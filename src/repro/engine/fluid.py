"""The fluid burst fast path: closed-form pipeline replay, no event loop.

An eligible burst (no fault scenario, hedging, telemetry, or subclass
hooks) is a *deterministic* pipeline given its RNG draws: placement times
are a cumulative sum, container builds are a k-slot FIFO recursion,
shipping is processor sharing of equal-sized transfers (which completes in
FIFO order), and execution/warm-wave reuse is a small event-merge. This
module replays that arithmetic directly — float-op for float-op, draw for
draw, in the same order as the discrete-event path — so the result is
**byte-identical** to the event-driven kernel while doing O(instances)
array/loop work instead of O(instances · ~10) heap events.

Eligibility rules and the draw-order contract are documented in
``docs/PERFORMANCE.md``; the identity tests in
``tests/test_kernel_modes.py`` pin fluid == batched == scalar.

Two entry points:

* :func:`try_run_fluid` — used by ``BurstDispatchKernel.run`` in ``fluid``
  mode: returns a fully materialized, byte-identical :class:`RunResult`,
  or ``None`` when the burst is ineligible (caller falls back to the
  event loop).
* :func:`run_fluid_aggregates` — the million-scale variant: same replay,
  but skips per-instance record materialization and returns
  :class:`FluidAggregates` whose count/cost/makespan match the
  materialized result exactly (same sequential arithmetic over the same
  floats).

On abort paths (billed timeout, fleet exhaustion) the fluid replay raises
the same exception with the same message as the event-driven kernel, but
may have consumed more prefetched RNG draws than the scalar path had at
the abort point; a burst runs on a per-run RNG family, so this is
unobservable outside the aborted run.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.platform.billing import BillingModel
from repro.platform.metrics import ExpenseBreakdown, FaultStats, InstanceRecord, RunResult
from repro.platform.scheduler import PlacementScheduler

if TYPE_CHECKING:  # annotation-only: avoid a cycle with engine.burst
    from repro.cluster.registry import FunctionImage
    from repro.engine.burst import BurstDispatchKernel, BurstSpec

#: Template hooks and lifecycle methods that must be un-overridden for the
#: closed-form replay to be faithful to what the event loop would do.
_REQUIRED_BASE_METHODS = (
    "_image_for",
    "_modeled_exec_seconds",
    "_make_instance",
    "_release_instance",
    "_record_completion",
    "_admit",
    "_placed",
    "_built",
    "_maybe_ship",
    "_shipped",
    "_start_execution",
    "_exec_done",
    "_reuse_warm",
    "_warm_start",
    "begin",
    "collect",
)


def fluid_ineligibility(kernel: "BurstDispatchKernel", spec: "BurstSpec") -> Optional[str]:
    """Why this burst cannot take the fluid path (``None`` = eligible).

    The rules are conservative: anything that injects extra draws, extra
    events, or consumer-specific behaviour into the lifecycle falls back
    to the event-driven path, which is always correct.
    """
    from repro.engine.burst import BurstDispatchKernel
    from repro.platform.container import ContainerPipeline

    if spec.scenario is not None:
        return "fault scenario active"
    if spec.hedge is not None:
        return "hedging active"
    if kernel.profile.failure_rate > 0.0:
        return "profile failure rate > 0"
    if kernel._tel is not None:
        return "telemetry instrumentation attached"
    for name in _REQUIRED_BASE_METHODS:
        if getattr(type(kernel), name) is not getattr(BurstDispatchKernel, name):
            return f"subclass overrides {name}"
    if type(kernel.scheduler) is not PlacementScheduler:
        return "non-serial placement scheduler"
    if kernel.scheduler._search_hist is not None:
        return "scheduler metrics attached"
    if kernel.scheduler._queue or kernel.scheduler._busy:
        return "scheduler busy"
    if type(kernel.pipeline) is not ContainerPipeline:
        return "custom container pipeline"
    if kernel.pipeline.builder.busy_servers or kernel.pipeline.builder.queued_jobs:
        return "builder busy"
    if kernel.pipeline.network.in_flight:
        return "uplink busy"
    if kernel.sim._now != 0.0 or kernel.sim._heap:
        return "simulator not fresh"
    pool = kernel.scheduler.pool
    if pool.total_instances != 0:
        return "server pool not empty"
    return None


@dataclass(frozen=True)
class FluidAggregates:
    """Aggregate result of an un-materialized fluid burst.

    ``expense`` / ``makespan_s`` / ``scaling_time_s`` are computed with the
    identical sequential arithmetic the materialized path uses, so they
    equal the corresponding :class:`RunResult` values exactly.
    """

    platform_name: str
    app_name: str
    concurrency: int
    packing_degree: int
    n_records: int
    n_warm_starts: int
    scaling_time_s: float
    makespan_s: float
    expense: ExpenseBreakdown
    total_billed_gb_seconds: float

    @property
    def total_expense_usd(self) -> float:
        return self.expense.total_usd


def try_run_fluid(
    kernel: "BurstDispatchKernel", spec: "BurstSpec", image: "FunctionImage"
):
    """Run ``spec`` through the fluid replay, or ``None`` if ineligible."""
    if fluid_ineligibility(kernel, spec) is not None:
        return None
    return _run_fluid(kernel, spec, image, materialize=True)


def run_fluid_aggregates(
    kernel: "BurstDispatchKernel", spec: "BurstSpec", image: "FunctionImage"
) -> FluidAggregates:
    """Million-scale entry point: replay without per-instance records.

    Raises ``ValueError`` when the burst is ineligible — at the scales this
    is meant for, silently falling back to the event loop would be a
    thousand-fold slowdown, which should be an explicit caller decision.
    """
    reason = fluid_ineligibility(kernel, spec)
    if reason is not None:
        raise ValueError(f"burst is not fluid-eligible: {reason}")
    return _run_fluid(kernel, spec, image, materialize=False)


def _run_fluid(
    kernel: "BurstDispatchKernel",
    spec: "BurstSpec",
    image: "FunctionImage",
    materialize: bool,
):
    from repro.engine.burst import FunctionTimeoutError
    from repro.faults.retry import ImmediateRetry
    from repro.engine.kernel import resolve_retry_policy

    profile = kernel.profile
    pipeline = kernel.pipeline
    scheduler = kernel.scheduler
    rng = kernel.rng

    # ------------------------------------------------------------------ #
    # Mirror begin()'s configuration side effects.
    # ------------------------------------------------------------------ #
    kernel._spec = spec
    kernel._image = image
    n_inst = spec.n_instances
    cold = n_inst if spec.wave_size is None else min(n_inst, spec.wave_size)
    kernel._concurrency_level = cold
    kernel._invoked_at = 0.0
    kernel.retry_policy = resolve_retry_policy(
        spec.retry_policy,
        spec.scenario,
        platform_default=ImmediateRetry(profile.max_retries),
    )
    kernel._retry_policy = kernel.fresh_retry()
    kernel.configure_faults(None, profile.failure_rate)

    provisioned = spec.provisioned_mb or profile.max_memory_mb
    if provisioned > profile.max_memory_mb:
        raise ValueError(
            f"provisioned memory {provisioned} MB exceeds the platform "
            f"maximum {profile.max_memory_mb} MB"
        )
    kernel._provisioned = provisioned
    kernel._instances = {}

    # Per-chain packing: every cold chain gets the full packing degree
    # except possibly the last (when cold == n_inst takes the remainder).
    packing = spec.packing_degree
    npacked_cold = [packing] * cold
    if cold == n_inst:
        npacked_cold[-1] = spec.concurrency - packing * (cold - 1)
    pending = spec.concurrency - sum(npacked_cold)

    # ------------------------------------------------------------------ #
    # Draw order contract, step 1: one "build" noise draw per cold chain,
    # in chain order (the event path draws all of them at t=0 in _admit).
    # ------------------------------------------------------------------ #
    base_build = pipeline.build_seconds(image, spec.build_factor)
    bsig = pipeline.build_noise_sigma
    if bsig > 0.0:
        bnoise = np.exp(rng.stream("build").normal(0.0, bsig, cold)).tolist()
    else:
        bnoise = [1.0] * cold
    works = [base_build * z for z in bnoise]

    # Placement completions: request k costs base + search * k, serially.
    sched = np.cumsum(
        scheduler.base_cost_s + scheduler.search_cost_s * np.arange(cold, dtype=np.float64)
    ).tolist()

    # Build completions: k-slot FIFO recursion over a finish-time heap.
    slots = pipeline.builder.servers
    built: list[float] = [0.0] * cold
    if cold <= slots:
        for i in range(cold):
            built[i] = works[i]
    else:
        finish = works[:slots]
        for i in range(slots):
            built[i] = works[i]
        heapq.heapify(finish)
        for i in range(slots, cold):
            t = heapq.heappop(finish)
            b = t + works[i]
            built[i] = b
            heapq.heappush(finish, b)

    # Ship-ready instants; stable sort matches the sim's FIFO tie-breaking.
    ready = [(max(sched[i], built[i]), i) for i in range(cold)]
    ready.sort()

    # Shipping: processor-sharing replay (exact virtual-time arithmetic of
    # ProcessorSharingResource). Equal transfer sizes => FIFO completions.
    w_ship = pipeline.ship_size_mb(image, spec.ship_factor)
    cap_ps = pipeline.network._uplink.capacity
    ship_t: list[float] = [0.0] * cold   # completion time, in pop order
    ship_i: list[int] = [0] * cold       # chain index, in pop order
    fv: list[float] = [0.0] * cold       # finish virtual times (FIFO ring)
    head = 0
    tail = 0
    vtime = 0.0
    vupd = 0.0
    active = 0
    next_comp = math.inf
    ai = 0
    done = 0
    inf = math.inf
    while done < cold:
        t_arr = ready[ai][0] if ai < cold else inf
        if t_arr < next_comp:
            # submit: advance vtime, admit, reschedule
            if active > 0:
                vtime += (t_arr - vupd) * (cap_ps / active)
            vupd = t_arr
            active += 1
            fv[tail] = vtime + w_ship
            tail += 1
            ai += 1
            remaining_v = fv[head] - vtime
            if remaining_v < 0.0:
                remaining_v = 0.0
            next_comp = t_arr + remaining_v * active / cap_ps
        else:
            t = next_comp
            if active > 0:
                vtime += (t - vupd) * (cap_ps / active)
            vupd = t
            ship_t[done] = t
            ship_i[done] = ready[head][1]
            head += 1
            done += 1
            active -= 1
            if head < tail:
                remaining_v = fv[head] - vtime
                if remaining_v < 0.0:
                    remaining_v = 0.0
                next_comp = t + remaining_v * active / cap_ps
            else:
                next_comp = inf
    pipeline.network.bytes_shipped_mb = _repeat_add(
        pipeline.network.bytes_shipped_mb, w_ship, cold
    )
    pipeline.network._uplink.total_jobs += cold
    pipeline.builder.total_jobs += cold
    pipeline.containers_built += cold
    scheduler.placements_made += cold

    # ------------------------------------------------------------------ #
    # Execution model constants (identical op order to _start_execution).
    # ------------------------------------------------------------------ #
    def modeled_for(n: int) -> float:
        return kernel.interference.execution_seconds(spec.app, n, cold)

    def penalty_for(n: int) -> float:
        mem_per_core = profile.max_memory_mb / profile.cores_per_instance
        need_mb = n * mem_per_core
        actual = max(1.0, need_mb / provisioned)
        calibrated = max(1.0, need_mb / profile.max_memory_mb)
        return actual / calibrated

    modeled_cache = {n: modeled_for(n) for n in set(npacked_cold) | {packing}}
    penalty_cache = {n: penalty_for(n) for n in modeled_cache}
    overhead = spec.exec_overhead
    cap_exec = profile.max_execution_seconds
    enforce = kernel.enforce_timeout

    # Draw order contract, step 2: "exec" noise, one draw per execution
    # start, in execution-start event order (prefetched — i.i.d. draws, so
    # the k-th stream value goes to the k-th execution start).
    esig = profile.exec_noise_sigma
    if esig > 0.0:
        enoise = np.exp(rng.stream("exec").normal(0.0, esig, n_inst)).tolist()
    else:
        enoise = [1.0] * n_inst

    # Draw order contract, step 3: "skew" lognormal blocks, n_packed draws
    # per execution start, in execution-start event order.
    skew_cv = spec.skew_cv
    if skew_cv > 0.0:
        ssig = float(np.sqrt(np.log1p(skew_cv * skew_cv)))
        skew_draws = rng.stream("skew").lognormal(
            -0.5 * ssig * ssig, ssig, spec.concurrency
        )
    else:
        skew_draws = None
    skew_cursor = 0

    # Object-store accounting, accumulated in completion order.
    app = spec.app
    shared_mb = app.io_mb * app.io_shared_fraction
    private_mb = app.io_mb * (1.0 - app.io_shared_fraction)
    io_mb = spec.extra_io_mb_per_function
    usage = kernel.store.usage
    transferred = usage.transferred_mb
    puts = usage.put_requests
    gets = usage.get_requests

    # Fleet capacity: uniform instance shapes + first-fit over uniform
    # servers means exhaustion occurs exactly when occupancy hits the
    # fleet-wide slot count.
    pool = scheduler.pool
    srv = pool.servers[0]
    per_server = min(
        srv.cores // profile.cores_per_instance, srv.memory_mb // provisioned
    )
    fleet_cap = len(pool.servers) * per_server

    # Per-record output columns, indexed by record id (creation order).
    invoked = [0.0] * cold
    sched_done = sched[:]
    built_at = built[:]
    shipped_at: list[float] = [0.0] * cold
    exec_start: list[float] = [0.0] * cold
    exec_end: list[float] = [0.0] * cold
    npacked = npacked_cold[:]
    warm_flag = [False] * cold

    # ------------------------------------------------------------------ #
    # Master replay: merge placements (+occupancy), ship completions
    # (cold execution starts), execution completions, and warm starts.
    # ------------------------------------------------------------------ #
    occupancy = 0
    exec_idx = 0            # cursor into the prefetched exec-noise draws
    pi = 0                  # next placement
    si = 0                  # next ship completion
    dyn: list[tuple[float, int, int, int]] = []  # (t, seq, kind, record id)
    dseq = 0
    DONE, WARM = 0, 1
    n_warm = 0
    makespan = 0.0
    last_start = 0.0

    def start_exec(rid: int, t: float) -> None:
        nonlocal exec_idx, skew_cursor, dseq, makespan, last_start
        n = npacked[rid]
        exec_start[rid] = t
        if t > last_start:
            last_start = t
        noise = enoise[exec_idx]
        exec_idx += 1
        if skew_draws is not None:
            seg = skew_draws[skew_cursor:skew_cursor + n]
            skew_cursor += n
            skew = float(seg.max())
        else:
            skew = 1.0
        duration = (
            modeled_cache[n] * noise * overhead * skew * penalty_cache[n]
        )
        if enforce and duration > cap_exec:
            end = t + cap_exec
            exec_end[rid] = end
            record = _make_record(
                rid, n, invoked[rid], sched_done[rid], built_at[rid],
                shipped_at[rid], t, end, provisioned, warm_flag[rid],
            )
            record.timed_out = True
            bill = BillingModel(profile)
            billed = bill.instance_compute_usd(record) + profile.per_request_usd
            raise FunctionTimeoutError(
                f"{app.name}: instance {rid} would run "
                f"{duration:.0f}s > platform cap {cap_exec:.0f}s "
                f"(packing degree {n})",
                record=record,
                billed_usd=billed,
            )
        end = t + duration
        if end > makespan:
            makespan = end
        heapq.heappush(dyn, (end, dseq, DONE, rid))
        dseq += 1

    while pi < cold or si < cold or dyn:
        tp = sched[pi] if pi < cold else inf
        ts = ship_t[si] if si < cold else inf
        td = dyn[0][0] if dyn else inf
        if tp <= ts and tp <= td:
            # Placement completes: the pool allocates one more slot.
            if occupancy >= fleet_cap:
                raise RuntimeError(
                    f"fleet exhausted: {len(pool.servers)} servers, "
                    f"{occupancy} instances placed"
                )
            occupancy += 1
            pi += 1
        elif ts <= td:
            rid = ship_i[si]
            shipped_at[rid] = ts
            si += 1
            start_exec(rid, ts)
        else:
            t, _s, kind, rid = heapq.heappop(dyn)
            if kind == WARM:
                built_at[rid] = t
                shipped_at[rid] = t
                start_exec(rid, t)
                continue
            # Execution done: account I/O, then reuse warm or release.
            exec_end[rid] = t
            n = npacked[rid]
            puts += n
            gets += n
            transferred += shared_mb + private_mb * n
            if io_mb > 0.0:
                transferred += io_mb * n
                puts += n
            if pending > 0:
                n_w = packing if pending >= packing else pending
                pending -= n_w
                wid = len(npacked)
                npacked.append(n_w)
                invoked.append(t)
                sched_done.append(t)
                built_at.append(0.0)
                shipped_at.append(0.0)
                exec_start.append(0.0)
                exec_end.append(0.0)
                warm_flag.append(True)
                if n_w not in modeled_cache:
                    modeled_cache[n_w] = modeled_for(n_w)
                    penalty_cache[n_w] = penalty_for(n_w)
                heapq.heappush(dyn, (t + spec.warm_dispatch_s, dseq, WARM, wid))
                dseq += 1
                n_warm += 1
            else:
                occupancy -= 1

    usage.put_requests = puts
    usage.get_requests = gets
    usage.transferred_mb = transferred
    kernel._pending_functions = 0
    kernel.sim._now = makespan  # observational parity with the event path

    n_records = len(npacked)
    billing = BillingModel(profile)

    if materialize:
        records = kernel._records
        for rid in range(n_records):
            records.append(
                _make_record(
                    rid, npacked[rid], invoked[rid], sched_done[rid],
                    built_at[rid], shipped_at[rid], exec_start[rid],
                    exec_end[rid], provisioned, warm_flag[rid],
                )
            )
        return kernel.collect()

    # Aggregates-only: identical sequential arithmetic, no record objects.
    billed_gb = billing.billed_memory_mb(provisioned) / 1024.0
    fidelity = billing.fidelity
    rate = profile.gb_second_usd
    compute = 0.0
    total_gbs = 0.0
    if fidelity.exact:
        for rid in range(n_records):
            es = exec_end[rid] - exec_start[rid]
            compute += es * billed_gb * rate
            total_gbs += es * billed_gb
    else:
        for rid in range(n_records):
            es = exec_end[rid] - exec_start[rid]
            compute += fidelity.billed_seconds(es) * billed_gb * rate
            total_gbs += es * billed_gb
    expense = ExpenseBreakdown(
        compute_usd=float(compute),
        requests_usd=float(n_records * profile.per_request_usd),
        storage_usd=float(
            usage.put_requests * profile.storage_put_usd
            + usage.get_requests * profile.storage_get_usd
        ),
        egress_usd=float((usage.transferred_mb / 1024.0) * profile.egress_usd_per_gb),
    )
    kernel._stats = FaultStats()
    kernel._stats.total_billed_gb_seconds = total_gbs
    return FluidAggregates(
        platform_name=profile.name,
        app_name=app.name,
        concurrency=spec.concurrency,
        packing_degree=packing,
        n_records=n_records,
        n_warm_starts=n_warm,
        scaling_time_s=last_start,
        makespan_s=makespan,
        expense=expense,
        total_billed_gb_seconds=total_gbs,
    )


def _make_record(
    rid: int,
    n_packed: int,
    invoked_at: float,
    sched_done: float,
    built_at: float,
    shipped_at: float,
    exec_start: float,
    exec_end: float,
    provisioned: int,
    warm: bool,
) -> InstanceRecord:
    return InstanceRecord(
        instance_id=rid,
        n_packed=n_packed,
        invoked_at=invoked_at,
        sched_done=sched_done,
        built_at=built_at,
        shipped_at=shipped_at,
        exec_start=exec_start,
        exec_end=exec_end,
        provisioned_mb=provisioned,
        warm_start=warm,
    )


def _repeat_add(start: float, addend: float, count: int) -> float:
    """``count`` sequential float additions (matches the event path's sum)."""
    total = start
    for _ in range(count):
        total += addend
    return total
