"""Columnar attempt-chain walker: per-wave array draws, not per-attempt.

:meth:`~repro.engine.kernel.DispatchKernel.run_synchronous_chain` walks one
chain at a time, paying one scalar RNG call per decision. This module walks
*all* chains of a dispatch round together — one numpy ``Generator`` call
per wave per decision kind — which is what lifts the synchronous dispatch
path to million-chain scale (see ``BENCH_dispatch.json``'s
``chains_per_s``).

Wave-major draw-order contract
------------------------------

Chain-major and wave-major walks consume the same streams but in a
different order, so a wave walk is *not* byte-identical to a chain-major
walk of the same seed under faults (it is distributionally identical, and
exactly reproducible for a given seed). With no fault scenario the first
wave is the only wave and the two walks coincide byte-for-byte (asserted
by ``tests/test_wave_walker.py``). Per attempt round, over the admitted
chains in wave order:

1. ``exec``            — one ``normal(0, sigma, n)`` array; the noise
                         factor is ``exp`` of it elementwise.
2. ``fault.straggler`` — one ``random(n)`` verdict array; then one
                         ``lognormal(mu, sigma, k)`` array over the
                         ``k`` flagged chains, in wave order.
3. ``fault.crash``     — one ``random(p)`` at-fraction array over the
                         ``p`` poisoned chains; one ``random(n - p)``
                         verdict array over the rest; one ``random(k)``
                         at-fraction array over the ``k`` crashed; one
                         ``random(k)`` persistence array (only when the
                         scenario has a persistent fraction).
4. ``retry``           — scalar policy draws per crashed chain, in wave
                         order (identical to the chain-major contract).

Throttle-gate arbitration stays sequential within the wave (the token
bucket is shared state), exactly as in the chain-major walk.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Protocol, Union

import numpy as np

from repro.engine.chain import AttemptChain
from repro.engine.kernel import DispatchKernel
from repro.faults.injector import CrashDecision


class WaveJobs:
    """Columnar job batch: parallel ``chains`` / ``launch_at`` lists.

    The walker's native input shape. Column layout avoids one boxed
    ``(chain, time)`` tuple per job — at million-chain scale those tuples
    are measurable garbage-collector pressure on every walk round.
    """

    __slots__ = ("chains", "launch_at")

    def __init__(self, chains: list[AttemptChain], launch_at: list[float]) -> None:
        if len(chains) != len(launch_at):
            raise ValueError("chains and launch_at must be the same length")
        self.chains = chains
        self.launch_at = launch_at

    def __len__(self) -> int:
        return len(self.chains)

    def __iter__(self) -> Iterator[tuple[AttemptChain, float]]:
        return zip(self.chains, self.launch_at)


class WaveEnv(Protocol):
    """Consumer hooks for :func:`run_chain_waves`.

    The walker owns every RNG draw (the wave-major contract above); the
    environment supplies the noise-free work model and per-outcome
    accounting. ``exec_noise_sigma`` is the lognormal sigma the walker
    applies to every attempt's work (0 disables the draw entirely).
    """

    exec_noise_sigma: float

    def throttle_clock(self, launch_at: float) -> float: ...
    def on_throttled(self, chain: AttemptChain) -> None: ...
    def on_rejected(self, chain: AttemptChain) -> None: ...
    def is_warm(self, launch_at: float) -> bool: ...
    def work_seconds(self, chain: AttemptChain, warm: bool) -> float:
        """Noise-free seconds of one attempt (no RNG — the walker draws)."""
        ...
    def on_success(
        self, chain: AttemptChain, launch_at: float, warm: bool, exec_seconds: float
    ) -> None: ...
    def on_crash(
        self,
        chain: AttemptChain,
        launch_at: float,
        warm: bool,
        exec_seconds: float,
        crash: CrashDecision,
    ) -> float: ...
    def on_retry(self, chain: AttemptChain, delay: float) -> None: ...
    def on_exhausted(self, chain: AttemptChain) -> None: ...


def run_chain_waves(
    kernel: DispatchKernel,
    env: WaveEnv,
    jobs: Union[WaveJobs, Iterable[tuple[AttemptChain, float]]],
) -> int:
    """Walk every ``(chain, launch_at)`` job to a terminal state in waves.

    Semantically equivalent to calling
    :meth:`DispatchKernel.run_synchronous_chain` per chain (throttle gate,
    warm check, execution draw, crash draw, retry arbitration), but each
    attempt round's RNG comes from one array draw per decision kind.
    Returns the number of attempt rounds (waves) executed.
    """
    bucket = kernel.bucket
    injector = kernel.injector
    scenario = kernel.scenario
    rng = kernel.rng
    sigma = env.exec_noise_sigma
    straggler_rate = scenario.straggler_rate if scenario is not None else 0.0
    crash_rate = injector.crash_rate if injector is not None else 0.0
    persistent_fraction = (
        scenario.persistent_fraction if scenario is not None else 0.0
    )
    crash_metrics = injector._metrics if injector is not None else None
    # Optional vectorized env hooks (fall back to the per-chain protocol).
    is_warm_wave = getattr(env, "is_warm_wave", None)
    work_wave = getattr(env, "work_seconds_wave", None)
    success_wave = getattr(env, "on_success_wave", None)

    if isinstance(jobs, WaveJobs):
        act_chains = list(jobs.chains)
        act_times = list(jobs.launch_at)
    else:
        pairs = list(jobs)
        act_chains = [c for c, _ in pairs]
        act_times = [t for _, t in pairs]
    # Poison tracking: scanning every chain per wave would dominate the
    # common all-clean case, so track a single dirty flag instead.
    any_poisoned = any(c.poisoned for c in act_chains)
    waves = 0
    while act_chains:
        waves += 1
        # ---------------- throttle gate (sequential: shared bucket) ------ #
        if bucket is not None:
            # The token-bucket arithmetic of TokenBucket.try_acquire /
            # seconds_until_token, inlined (identical float ops; state is
            # written back after the wave) — the gate is per-chain work on
            # every admission, so call overhead would dominate it.
            cap_f = float(bucket.capacity)
            refill = bucket.refill_per_s
            tokens = bucket._tokens
            last = bucket._last
            n_admitted = 0
            n_rejected = 0
            backoff = scenario.throttle_backoff_s if scenario is not None else 0.0
            max_tries = scenario.throttle_max_retries if scenario is not None else 0
            chains: list[AttemptChain] = []
            times: list[float] = []
            for chain, t in zip(act_chains, act_times):
                rejected = False
                while True:
                    now = env.throttle_clock(t)
                    if now < last:
                        raise ValueError("token bucket clock moved backwards")
                    tokens = tokens + (now - last) * refill
                    if tokens > cap_f:
                        tokens = cap_f
                    last = now
                    if tokens >= 1.0:
                        tokens -= 1.0
                        n_admitted += 1
                        break
                    n_rejected += 1
                    chain.throttle_tries += 1
                    env.on_throttled(chain)
                    if chain.throttle_tries > max_tries:
                        chain.lost = True
                        env.on_rejected(chain)
                        rejected = True
                        break
                    t = now + (
                        backoff * chain.throttle_tries + (1.0 - tokens) / refill
                    )
                if not rejected:
                    chains.append(chain)
                    times.append(t)
            bucket._tokens = tokens
            bucket._last = last
            bucket.admitted += n_admitted
            bucket.rejected += n_rejected
        else:
            chains = act_chains
            times = act_times
        n = len(chains)
        if n == 0:
            break

        if is_warm_wave is not None:
            warm = is_warm_wave(times)
        else:
            warm = [env.is_warm(t) for t in times]
        if work_wave is not None:
            exec_s = work_wave(chains, warm)
        else:
            exec_s = [env.work_seconds(c, w) for c, w in zip(chains, warm)]

        # ---------------- wave draw 1: execution noise ------------------- #
        if sigma > 0.0:
            noise = np.exp(rng.stream("exec").normal(0.0, sigma, n)).tolist()
            exec_s = [e * f for e, f in zip(exec_s, noise)]

        # ---------------- wave draw 2: stragglers ------------------------ #
        if straggler_rate > 0.0:
            sstream = rng.stream("fault.straggler")
            verdicts = sstream.random(n)
            flagged = np.flatnonzero(verdicts < straggler_rate)
            if flagged.size:
                extras = sstream.lognormal(
                    scenario.straggler_mu, scenario.straggler_sigma, flagged.size
                ).tolist()
                for i, extra in zip(flagged.tolist(), extras):
                    exec_s[i] *= 1.0 + extra

        # ---------------- wave draw 3: crash verdicts -------------------- #
        decisions: list[CrashDecision | None] = [None] * n
        n_crashed = 0
        if injector is not None:
            cstream = rng.stream("fault.crash")
            poisoned_idx = (
                [i for i in range(n) if chains[i].poisoned] if any_poisoned else []
            )
            if poisoned_idx:
                ats = cstream.random(len(poisoned_idx)).tolist()
                for i, at in zip(poisoned_idx, ats):
                    decisions[i] = CrashDecision(at_fraction=at, persistent=True)
                n_crashed += len(poisoned_idx)
            if crash_rate > 0.0:
                if poisoned_idx:
                    clean_idx = [i for i in range(n) if not chains[i].poisoned]
                    verdicts = cstream.random(len(clean_idx))
                    hit = [
                        clean_idx[j]
                        for j in np.flatnonzero(verdicts < crash_rate).tolist()
                    ]
                else:
                    verdicts = cstream.random(n)
                    hit = np.flatnonzero(verdicts < crash_rate).tolist()
                if hit:
                    ats = cstream.random(len(hit)).tolist()
                    if persistent_fraction > 0.0:
                        pdraws = cstream.random(len(hit)).tolist()
                        persists = [p < persistent_fraction for p in pdraws]
                    else:
                        persists = [False] * len(hit)
                    for i, at, persistent in zip(hit, ats, persists):
                        decisions[i] = CrashDecision(at_fraction=at, persistent=persistent)
                    n_crashed += len(hit)
            if crash_metrics is not None and n_crashed:
                for decision in decisions:
                    if decision is not None:
                        injector._count_crash(decision)

        # ---------------- outcomes + retry arbitration ------------------- #
        next_chains: list[AttemptChain] = []
        next_times: list[float] = []
        if n_crashed == 0 and success_wave is not None:
            for chain in chains:
                chain.satisfied = True
            success_wave(chains, times, warm, exec_s)
            act_chains = next_chains
            act_times = next_times
            continue
        ok_i: list[int] | None = [] if success_wave is not None else None
        add_ok = ok_i.append if ok_i is not None else None
        for i in range(n):
            chain = chains[i]
            decision = decisions[i]
            if decision is None:
                chain.satisfied = True
                if add_ok is None:
                    env.on_success(chain, times[i], warm[i], exec_s[i])
                else:
                    add_ok(i)
                continue
            if decision.persistent:
                chain.poisoned = True
                any_poisoned = True
            crash_at = env.on_crash(chain, times[i], warm[i], exec_s[i], decision)
            delay = kernel.next_retry_delay(chain)
            if delay is None:
                chain.lost = True
                env.on_exhausted(chain)
            else:
                env.on_retry(chain, delay)
                next_chains.append(chain)
                next_times.append(crash_at + delay)
        if ok_i:
            success_wave(
                [chains[i] for i in ok_i],
                [times[i] for i in ok_i],
                [warm[i] for i in ok_i],
                [exec_s[i] for i in ok_i],
            )
        act_chains = next_chains
        act_times = next_times
    return waves


def dispatch_wave_jobs(
    kernel: DispatchKernel,
    n_chains: int,
    n_packed: int,
    spacing_s: float = 0.0,
    per_chain_retry: bool = True,
) -> WaveJobs:
    """Convenience: mint ``n_chains`` fresh chains with arithmetic launch
    times ``i * spacing_s`` (the shape every synchronous consumer uses).

    Bulk-mints: same ids/registration as ``n_chains`` calls to
    :meth:`DispatchKernel.new_chain`, with one registry update."""
    base = kernel._next_chain_id
    policy = kernel.retry_policy if per_chain_retry else None
    if policy is None:
        chains = [AttemptChain(base + i, n_packed) for i in range(n_chains)]
    else:
        fresh = policy.fresh
        chains = [
            AttemptChain(base + i, n_packed, None, fresh())
            for i in range(n_chains)
        ]
    kernel._next_chain_id = base + n_chains
    kernel.chains.update((c.chain_id, c) for c in chains)
    return WaveJobs(chains, [i * spacing_s for i in range(n_chains)])
