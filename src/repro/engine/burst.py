"""The event-driven burst dispatch kernel (the Step-Functions role).

Drives attempt chains through the full cold pipeline on the discrete-event
simulator: placement scheduling ∥ container build → shipping → execution.
Supports the *wave* dispatch pattern used by the Pywren baseline (at most
``wave_size`` instances are provisioned cold; finished instances are
reused warm — execution only, no build/ship), speculative hedging of
straggling attempts, billed timeouts, 429 admission throttling, and
correlated crash events.

All retry/fault/throttle arbitration is inherited from
:class:`~repro.engine.kernel.DispatchKernel`; this module adds the
event-driven driver and the burst-specific accounting. Consumer-specific
variation points are template hooks (``_modeled_exec_seconds``,
``_image_for``, ``_make_instance`` / ``_release_instance``,
``_record_completion``) so heterogeneous dispatchers — e.g. the
mixed-packing simulator — reuse the identical lifecycle without forking it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.cluster.registry import FunctionImage
from repro.engine.chain import AttemptChain
from repro.engine.kernel import DispatchKernel, resolve_retry_policy
from repro.faults.retry import HedgePolicy, ImmediateRetry, RetryPolicy
from repro.faults.scenario import FaultScenario
from repro.interference.model import InterferenceModel
from repro.platform.billing import BillingModel
from repro.platform.container import ContainerPipeline
from repro.platform.instance import FunctionInstance
from repro.platform.metrics import FaultStats, InstanceRecord, RunResult
from repro.platform.providers import PlatformProfile
from repro.platform.scheduler import PlacementScheduler
from repro.platform.storage import ObjectStore
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.workloads.base import AppSpec

if TYPE_CHECKING:  # annotation-only: keeps the hot import path lean
    from repro.telemetry.instruments import BurstInstrumentation


class FunctionTimeoutError(RuntimeError):
    """An instance exceeded the platform's maximum execution time.

    The aborting attempt is billed for the full execution cap (Lambda
    semantics): its record carries ``exec_end = exec_start + cap`` and the
    exception reports the dollars charged for the doomed attempt.
    """

    def __init__(
        self,
        message: str,
        record: Optional[InstanceRecord] = None,
        billed_usd: float = 0.0,
    ) -> None:
        super().__init__(message)
        self.record = record
        self.billed_usd = billed_usd


@dataclass(frozen=True)
class BurstSpec:
    """One burst request.

    ``concurrency`` is the number of logical functions ``C``; the burst
    spawns ``ceil(C / packing_degree)`` instances (the last instance may be
    partially packed). ``provisioned_mb`` defaults to the platform maximum,
    matching the paper's setup ("we use Lambdas with the maximum memory
    size"). ``wave_size`` caps simultaneously provisioned instances;
    ``build_factor``/``ship_factor`` discount the cold-start pipeline
    (used by the Pywren baseline), and ``exec_overhead`` multiplies
    execution wall time (e.g. Pywren's S3 (de)serialization inside the
    handler — it is billed, because it runs inside the function).

    ``scenario`` injects a fault environment, ``retry_policy`` overrides
    the platform's immediate-retry default, and ``hedge`` enables
    speculative re-execution of straggling attempts.
    """

    app: AppSpec
    concurrency: int
    packing_degree: int = 1
    provisioned_mb: Optional[int] = None
    wave_size: Optional[int] = None
    build_factor: float = 1.0
    ship_factor: float = 1.0
    exec_overhead: float = 1.0
    warm_dispatch_s: float = 0.05
    extra_io_mb_per_function: float = 0.0
    # Coefficient of variation of per-function work (input skew). A packed
    # instance finishes with its slowest function, so skew stretches packed
    # execution times beyond the homogeneous model's prediction.
    skew_cv: float = 0.0
    scenario: Optional[FaultScenario] = None
    retry_policy: Optional[RetryPolicy] = None
    hedge: Optional[HedgePolicy] = None

    def __post_init__(self) -> None:
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if self.packing_degree < 1:
            raise ValueError("packing degree must be >= 1")
        if self.packing_degree > self.concurrency:
            raise ValueError(
                f"packing degree {self.packing_degree} exceeds concurrency "
                f"{self.concurrency}"
            )
        if self.wave_size is not None and self.wave_size < 1:
            raise ValueError("wave_size must be >= 1")
        if self.skew_cv < 0.0:
            raise ValueError("skew_cv must be non-negative")
        if self.build_factor <= 0.0 or self.ship_factor <= 0.0:
            raise ValueError("build/ship factors must be positive")
        if self.exec_overhead < 1.0:
            raise ValueError("exec_overhead must be >= 1.0")

    @property
    def n_instances(self) -> int:
        return math.ceil(self.concurrency / self.packing_degree)


class BurstDispatchKernel(DispatchKernel):
    """Executes one :class:`BurstSpec` on a fresh simulation."""

    def __init__(
        self,
        sim: Simulator,
        profile: PlatformProfile,
        scheduler: PlacementScheduler,
        pipeline: ContainerPipeline,
        store: ObjectStore,
        rng: RandomStreams,
        interference: InterferenceModel,
        enforce_timeout: bool = True,
        telemetry: Optional["BurstInstrumentation"] = None,
        mode: Optional[str] = None,
    ) -> None:
        super().__init__(rng, mode=mode)
        self.sim = sim
        self.profile = profile
        self.scheduler = scheduler
        self.pipeline = pipeline
        self.store = store
        self.interference = interference
        self.enforce_timeout = enforce_timeout
        # One attribute check per hook site when disabled (see the
        # telemetry_overhead benchmark gate).
        self._tel = telemetry
        self._records: list[InstanceRecord] = []
        self._pending_functions = 0
        self._lost_functions = 0
        self._stats = FaultStats()
        self._record_chain: dict[int, AttemptChain] = {}
        self._inflight: dict[int, tuple] = {}  # record id -> (event, instance, record)

    # ------------------------------------------------------------------ #
    # Template hooks (overridden by heterogeneous dispatchers)
    # ------------------------------------------------------------------ #
    def _image_for(self, record: InstanceRecord) -> FunctionImage:
        """The container image one attempt builds and ships."""
        return self._image

    def _modeled_exec_seconds(self, record: InstanceRecord) -> float:
        """Noise-free modeled execution time of one attempt."""
        return self.interference.execution_seconds(
            self._spec.app, record.n_packed, self._concurrency_level
        )

    def _make_instance(self, server, record: InstanceRecord) -> Optional[FunctionInstance]:
        """Claim placed resources for one attempt (None = untracked)."""
        return FunctionInstance(
            instance_id=record.instance_id,
            app=self._spec.app,
            n_packed=record.n_packed,
            server=server,
            provisioned_mb=record.provisioned_mb,
            cores=self.profile.cores_per_instance,
        )

    def _release_instance(self, instance: Optional[FunctionInstance]) -> None:
        """Return an attempt's resources to the pool."""
        instance.release()

    def _record_completion(self, record: InstanceRecord) -> None:
        """Account one successful attempt's I/O in the object store."""
        self.store.record_instance(self._spec.app, record.n_packed)

    # ------------------------------------------------------------------ #
    def begin(self, spec: BurstSpec, image: FunctionImage) -> None:
        """Enqueue the burst's invocations at the current simulation time.

        Does not drive the simulation — callers sharing one simulator
        across bursts (see :mod:`repro.platform.multitenant`) call
        ``begin`` per burst, run the simulator once, then ``collect``.
        """
        self._spec = spec
        self._image = image
        n_inst = spec.n_instances
        cold = n_inst if spec.wave_size is None else min(n_inst, spec.wave_size)
        self._concurrency_level = cold
        self._invoked_at = self.sim.now

        self.retry_policy = resolve_retry_policy(
            spec.retry_policy,
            spec.scenario,
            platform_default=ImmediateRetry(self.profile.max_retries),
        )
        self._retry_policy = self.fresh_retry()
        self.configure_faults(
            spec.scenario,
            self.profile.failure_rate,
            metrics=self._tel.registry if self._tel is not None else None,
        )

        provisioned = spec.provisioned_mb or self.profile.max_memory_mb
        if provisioned > self.profile.max_memory_mb:
            raise ValueError(
                f"provisioned memory {provisioned} MB exceeds the platform "
                f"maximum {self.profile.max_memory_mb} MB"
            )
        self._provisioned = provisioned
        remaining = spec.concurrency
        self._instances: dict[int, Optional[FunctionInstance]] = {}
        for _ in range(cold):
            n_packed = min(spec.packing_degree, remaining)
            remaining -= n_packed
            chain = self.new_chain(n_packed=n_packed)
            self._admit(chain, attempt=1, retry_delay=0.0)
        self._pending_functions = remaining

        for t in self.correlated_event_times():
            self.sim.schedule(t, self._correlated_event)

    def collect(self) -> RunResult:
        """Assemble the result after the simulation has drained.

        Timestamps are normalized to the burst's own invocation instant so
        a burst submitted mid-simulation reports the same metrics as one
        submitted at t=0.
        """
        if self._invoked_at:
            offset = self._invoked_at
            for record in self._records:
                record.invoked_at -= offset
                for field_name in ("sched_done", "built_at", "shipped_at",
                                   "exec_start", "exec_end"):
                    value = getattr(record, field_name)
                    if value is not None:
                        setattr(record, field_name, value - offset)
            self._invoked_at = 0.0
        billing = BillingModel(self.profile)
        expense = billing.burst_expense(self._records, self.store.usage)
        self._finalize_stats(billing)
        return RunResult(
            platform_name=self.profile.name,
            app_name=self._spec.app.name,
            concurrency=self._spec.concurrency,
            packing_degree=self._spec.packing_degree,
            records=self._records,
            expense=expense,
            lost_functions=self._lost_functions,
            fault_stats=self._stats,
        )

    def _finalize_stats(self, billing: BillingModel) -> None:
        for r in self._records:
            if r.exec_start is None or r.exec_end is None:
                continue
            gbs = r.exec_seconds * billing.billed_memory_mb(r.provisioned_mb) / 1024.0
            self._stats.total_billed_gb_seconds += gbs
            if r.failed or r.timed_out or r.cancelled:
                self._stats.wasted_billed_gb_seconds += gbs

    def run(self, spec: BurstSpec, image: FunctionImage) -> RunResult:
        """Simulate the burst to completion and return its result.

        In ``fluid`` mode an eligible burst (no faults, hedging, telemetry,
        or subclass hooks — see :func:`repro.engine.fluid.fluid_ineligibility`)
        skips the event loop and replays the pipeline's closed-form timeline
        instead, producing a byte-identical result in O(instances) array
        work; ineligible bursts fall back to the event-driven path.
        """
        if self.mode == "fluid":
            from repro.engine.fluid import try_run_fluid

            result = try_run_fluid(self, spec, image)
            if result is not None:
                return result
        self.begin(spec, image)
        self.sim.run()
        return self.collect()

    # ------------------------------------------------------------------ #
    # Admission (throttle gate) and the cold pipeline
    # ------------------------------------------------------------------ #
    def _admit(
        self,
        chain: AttemptChain,
        attempt: int,
        retry_delay: float,
        hedged: bool = False,
    ) -> None:
        """Admit one attempt of ``chain``, or bounce it off the throttle."""
        if chain.satisfied:
            return
        if self.bucket is not None:
            verdict = self.throttle_gate(chain, self.sim.now)
            if not verdict.admitted:
                self._stats.throttled_attempts += 1
                if self._tel is not None:
                    self._tel.on_throttled(chain.chain_id, chain.throttle_tries)
                if verdict.rejected:
                    self._stats.throttle_rejections_final += 1
                    chain.lost = True
                    self._lost_functions += chain.n_packed
                    if self._tel is not None:
                        self._tel.on_lost(chain.chain_id, chain.n_packed)
                    return
                self.sim.schedule(
                    verdict.wait_s, self._admit, chain, attempt, retry_delay, hedged
                )
                return
        record = InstanceRecord(
            instance_id=len(self._records),
            n_packed=chain.n_packed,
            invoked_at=self.sim.now,
            provisioned_mb=self._provisioned,
            attempt=attempt,
            hedged=hedged,
            throttled_attempts=chain.throttle_tries,
            retry_delay_s=retry_delay,
        )
        chain.throttle_tries = 0
        chain.track(record.instance_id)
        self._record_chain[record.instance_id] = chain
        self._records.append(record)
        if self._tel is not None:
            self._tel.on_invoked(record)
        # Placement search and container build proceed in parallel: the
        # image server does not need the placement target to build.
        self.scheduler.request_placement(
            self.profile.cores_per_instance, self._provisioned, self._placed, record
        )
        self.pipeline.build(
            self._image_for(record), self._built, record,
            build_factor=self._spec.build_factor,
        )

    def _placed(self, server, record: InstanceRecord) -> None:
        record.sched_done = self.sim.now
        if self._tel is not None:
            self._tel.on_placed(record)
        self._instances[record.instance_id] = self._make_instance(server, record)
        self._maybe_ship(record)

    def _built(self, record: InstanceRecord) -> None:
        record.built_at = self.sim.now
        if self._tel is not None:
            self._tel.on_built(record)
        self._maybe_ship(record)

    def _maybe_ship(self, record: InstanceRecord) -> None:
        # A container ships once it is both built and placed.
        if record.sched_done is None or record.built_at is None:
            return
        if self._tel is not None:
            self._tel.on_ship_begin(record)
        self.pipeline.ship(
            self._image_for(record), self._shipped, record,
            ship_factor=self._spec.ship_factor,
        )

    def _shipped(self, record: InstanceRecord) -> None:
        record.shipped_at = self.sim.now
        if self._tel is not None:
            self._tel.on_shipped(record)
        self._start_execution(self._instances.pop(record.instance_id), record)

    # ------------------------------------------------------------------ #
    # Execution, faults, and completion
    # ------------------------------------------------------------------ #
    def _cpu_share_penalty(self, record: InstanceRecord) -> float:
        """Memory-proportional CPU (Lambda semantics).

        Providers scale an instance's CPU share with its provisioned
        memory — at the platform maximum the instance has all its cores; a
        right-sized small instance gets a fraction of one. Each packed
        function needs roughly one core-equivalent
        (``max_memory / cores`` MB) to run at full speed. The penalty is
        expressed *relative to the max-memory configuration* the
        interference model was calibrated on, so it is exactly 1.0 whenever
        the burst provisions maximum memory (the paper's setup).
        """
        mem_per_core = self.profile.max_memory_mb / self.profile.cores_per_instance
        need_mb = record.n_packed * mem_per_core
        actual = max(1.0, need_mb / record.provisioned_mb)
        calibrated = max(1.0, need_mb / self.profile.max_memory_mb)
        return actual / calibrated

    def _skew_factor(self, n_packed: int) -> float:
        """Max of ``n_packed`` unit-mean lognormal work draws (input skew)."""
        cv = self._spec.skew_cv
        if cv <= 0.0:
            return 1.0
        sigma = float(np.sqrt(np.log1p(cv * cv)))
        draws = self.rng.stream("skew").lognormal(-0.5 * sigma * sigma, sigma, n_packed)
        return float(draws.max())

    def _chain_for(self, record: InstanceRecord) -> AttemptChain:
        return self._record_chain[record.instance_id]

    def _start_execution(
        self, instance: Optional[FunctionInstance], record: InstanceRecord
    ) -> None:
        chain = self._chain_for(record)
        if chain.satisfied:
            # A hedge twin already delivered this group's result while this
            # copy was still in the cold pipeline; abandon before executing.
            record.cancelled = True
            record.exec_start = record.exec_end = self.sim.now
            chain.untrack(record.instance_id)
            self._release_instance(instance)
            if self._tel is not None:
                self._tel.on_cancelled_before_exec(record)
            return
        record.exec_start = self.sim.now
        if self._tel is not None:
            self._tel.on_exec_begin(record)
        duration = (
            self._modeled_exec_seconds(record)
            * self.exec_noise_factor(self.profile.exec_noise_sigma)
            * self._spec.exec_overhead
            * self._skew_factor(record.n_packed)
            * self._cpu_share_penalty(record)
        )
        duration *= self.straggler_factor()
        cap = self.profile.max_execution_seconds
        if self.enforce_timeout and duration > cap:
            if self.injector is not None:
                self._schedule_timeout(instance, record, chain)
                return
            # Lambda bills a timed-out attempt for the full execution cap;
            # record the charge before aborting the run.
            record.exec_end = record.exec_start + cap
            record.timed_out = True
            self._release_instance(instance)
            if self._tel is not None:
                self._tel.on_exec_end(record, "timeout")
            billing = BillingModel(self.profile)
            billed = billing.instance_compute_usd(record) + self.profile.per_request_usd
            raise FunctionTimeoutError(
                f"{self._spec.app.name}: instance {record.instance_id} would run "
                f"{duration:.0f}s > platform cap "
                f"{cap:.0f}s "
                f"(packing degree {record.n_packed})",
                record=record,
                billed_usd=billed,
            )
        if self.injector is not None:
            decision = self.chain_crash_decision(chain)
            if decision is not None:
                record.persistent_fault = chain.poisoned
                crash_after = duration * decision.at_fraction
                event = self.sim.schedule(crash_after, self._exec_failed, instance, record)
                self._inflight[record.instance_id] = (event, instance, record)
                return
        elif self.profile.failure_rate > 0.0:
            fail_stream = self.rng.stream("failure")
            if fail_stream.random() < self.profile.failure_rate:
                # Crash at a uniform point of the execution; the partial run
                # is billed (providers charge failed attempts), then retried.
                crash_after = duration * float(fail_stream.random())
                event = self.sim.schedule(crash_after, self._exec_failed, instance, record)
                self._inflight[record.instance_id] = (event, instance, record)
                return
        event = self.sim.schedule(duration, self._exec_done, instance, record)
        self._inflight[record.instance_id] = (event, instance, record)
        self._maybe_schedule_hedge(chain, record, duration)

    def _maybe_schedule_hedge(
        self, chain: AttemptChain, record: InstanceRecord, duration: float
    ) -> None:
        hedge = self._spec.hedge
        if (
            hedge is None
            or record.hedged
            or record.warm_start
            or chain.hedges_launched >= hedge.max_hedges_per_group
        ):
            return
        # The hedge trigger compares against the *modeled* (noise-free)
        # execution time, the quantity a real controller would know.
        reference = (
            self._modeled_exec_seconds(record)
            * self._spec.exec_overhead
            * self._cpu_share_penalty(record)
        )
        threshold = hedge.trigger_seconds(reference)
        if duration <= threshold:
            return
        chain.hedges_launched += 1
        if self._tel is not None:
            self._tel.on_hedge(chain.chain_id)
        self.sim.schedule(threshold, self._launch_hedge, chain, record)

    def _launch_hedge(self, chain: AttemptChain, primary: InstanceRecord) -> None:
        if chain.satisfied or chain.lost:
            return
        if primary.instance_id not in self._inflight:
            return  # the primary already crashed; the retry path owns recovery
        self._stats.hedged_attempts += 1
        self._admit(chain, attempt=primary.attempt, retry_delay=0.0, hedged=True)

    def _schedule_timeout(
        self,
        instance: Optional[FunctionInstance],
        record: InstanceRecord,
        chain: AttemptChain,
    ) -> None:
        """The attempt runs to the cap, is billed in full, then handled."""
        cap = self.profile.max_execution_seconds
        event = self.sim.schedule(cap, self._exec_timed_out, instance, record)
        self._inflight[record.instance_id] = (event, instance, record)

    def _exec_timed_out(
        self, instance: Optional[FunctionInstance], record: InstanceRecord
    ) -> None:
        self._inflight.pop(record.instance_id, None)
        record.exec_end = self.sim.now
        record.timed_out = True
        self._stats.timed_out_attempts += 1
        self._release_instance(instance)
        chain = self._chain_for(record)
        chain.untrack(record.instance_id)
        if self._tel is not None:
            self._tel.on_exec_end(record, "timeout")
        self.store.record_failed_attempt(self._spec.app, record.n_packed)
        if self._spec.scenario is not None and not self._spec.scenario.retry_timeouts:
            if not chain.active and not chain.satisfied and not chain.lost:
                chain.lost = True
                self._lost_functions += chain.n_packed
                if self._tel is not None:
                    self._tel.on_lost(chain.chain_id, chain.n_packed)
            return
        self._retry_or_lose(chain, record)

    def _correlated_event(self) -> None:
        """One correlated infrastructure event: a slice of in-flight
        instances crash together (rack/AZ blast radius)."""
        victims = sorted(self._inflight)
        if not victims:
            return
        kills = self.correlated_kills(len(victims))
        for rid, kill in zip(victims, kills):
            if not kill:
                continue
            entry = self._inflight.get(rid)
            if entry is None:
                continue
            event, instance, record = entry
            if record.timed_out or record.failed:
                continue
            event.cancel()
            record.correlated = True
            self._exec_failed(instance, record)

    def _exec_failed(
        self, instance: Optional[FunctionInstance], record: InstanceRecord
    ) -> None:
        self._inflight.pop(record.instance_id, None)
        record.exec_end = self.sim.now
        record.failed = True
        self._release_instance(instance)  # the crash destroys the container
        self._stats.crashed_attempts += 1
        if record.correlated:
            self._stats.correlated_crashes += 1
        # The attempt fetched its inputs before dying; a retry re-pays the
        # transfer (and the egress fee, on providers that charge one).
        self.store.record_failed_attempt(self._spec.app, record.n_packed)
        chain = self._chain_for(record)
        chain.untrack(record.instance_id)
        if self._tel is not None:
            self._tel.on_exec_end(record, "crash")
        self._retry_or_lose(chain, record)

    def _retry_or_lose(self, chain: AttemptChain, record: InstanceRecord) -> None:
        if chain.satisfied or chain.lost:
            return
        if chain.active:
            return  # a hedge twin of this group is still in flight
        delay = self.next_retry_delay(
            chain, failed_attempt=record.attempt, retry=self._retry_policy
        )
        if delay is None:
            chain.lost = True
            self._lost_functions += chain.n_packed
            if self._tel is not None:
                self._tel.on_lost(chain.chain_id, chain.n_packed)
            return
        self._stats.retries_scheduled += 1
        self._stats.retry_delay_s_total += delay
        if self._tel is not None:
            self._tel.on_retry(chain.chain_id, record.attempt + 1, delay)
        # A retry is a fresh invocation: full placement + cold pipeline.
        if delay <= 0.0:
            self._admit(chain, attempt=record.attempt + 1, retry_delay=0.0)
        else:
            self.sim.schedule(delay, self._admit, chain, record.attempt + 1, delay)

    def _exec_done(
        self, instance: Optional[FunctionInstance], record: InstanceRecord
    ) -> None:
        self._inflight.pop(record.instance_id, None)
        record.exec_end = self.sim.now
        chain = self._chain_for(record)
        chain.untrack(record.instance_id)
        if chain.satisfied:
            # Lost a hedge race after executing fully; billed, no result.
            record.cancelled = True
            self._release_instance(instance)
            if self._tel is not None:
                self._tel.on_exec_end(record, "cancelled")
            return
        chain.satisfied = True
        if self._tel is not None:
            self._tel.on_exec_end(record, "ok")
        if record.hedged:
            self._stats.hedge_wins += 1
        self._cancel_twins(chain, record)
        self._record_completion(record)
        io_mb = self._spec.extra_io_mb_per_function
        if io_mb > 0.0:
            self.store.usage.transferred_mb += io_mb * record.n_packed
            self.store.usage.put_requests += record.n_packed
        if self._pending_functions > 0:
            self._reuse_warm(instance)
        else:
            self._release_instance(instance)

    def _cancel_twins(self, chain: AttemptChain, winner: InstanceRecord) -> None:
        """Abandon the losing copies of a hedged group (billed for elapsed
        time; copies still in the cold pipeline cancel at execution start)."""
        for rid in sorted(chain.active or ()):
            entry = self._inflight.pop(rid, None)
            if entry is None:
                continue  # still in the pipeline; cancels in _start_execution
            event, instance, record = entry
            event.cancel()
            record.cancelled = True
            record.exec_end = self.sim.now
            chain.untrack(rid)
            self._release_instance(instance)
            if self._tel is not None:
                self._tel.on_exec_end(record, "cancelled")

    def _reuse_warm(self, instance: FunctionInstance) -> None:
        n_packed = min(self._spec.packing_degree, self._pending_functions)
        self._pending_functions -= n_packed
        record = InstanceRecord(
            instance_id=len(self._records),
            n_packed=n_packed,
            invoked_at=self.sim.now,
            provisioned_mb=instance.provisioned_mb,
            warm_start=True,
        )
        record.sched_done = self.sim.now
        chain = self.new_chain(n_packed=n_packed)
        chain.track(record.instance_id)
        self._record_chain[record.instance_id] = chain
        warm = FunctionInstance(
            instance_id=record.instance_id,
            app=instance.app,
            n_packed=n_packed,
            server=instance.server,
            provisioned_mb=instance.provisioned_mb,
            cores=instance.cores,
        )
        self._records.append(record)
        if self._tel is not None:
            self._tel.on_invoked(record, warm=True)
        self.sim.schedule(self._spec.warm_dispatch_s, self._warm_start, warm, record)

    def _warm_start(self, instance: FunctionInstance, record: InstanceRecord) -> None:
        record.built_at = self.sim.now
        record.shipped_at = self.sim.now
        self._start_execution(instance, record)
