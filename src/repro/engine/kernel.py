"""The dispatch kernel: fault, throttle, and retry arbitration in one place.

Every consumer loop used to wire :class:`~repro.faults.injector.FaultInjector`,
:class:`~repro.faults.throttle.TokenBucket`, and
:class:`~repro.faults.retry.RetryPolicy` by hand. The kernel owns those
decisions now:

* :meth:`DispatchKernel.throttle_gate` — one admission verdict per attempt,
  with the scenario's linear-backoff schedule and final-rejection cutoff;
* :meth:`DispatchKernel.chain_crash_decision` — crash draws that poison the
  chain on persistent faults;
* :meth:`DispatchKernel.next_retry_delay` — retry arbitration that advances
  the chain's attempt counter and decorrelated-jitter feedback state;
* :meth:`DispatchKernel.run_synchronous_chain` — the full attempt walk on
  an arithmetic clock (throttle → warm check → execute → crash → retry),
  used by dispatch paths that do not need discrete-event interleaving.

All randomness flows through the dedicated ``RandomStreams`` labels the
consumers already used (``exec``, ``retry``, ``fault.*``), in the same draw
order — a seeded run produces bit-identical output through the kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Protocol

from repro.engine.chain import AttemptChain
from repro.faults.injector import CrashDecision, FaultInjector
from repro.faults.retry import ImmediateRetry, RetryPolicy
from repro.faults.scenario import FaultScenario
from repro.faults.throttle import TokenBucket
from repro.sim.randomness import RandomStreams


#: The three dispatch execution modes (see docs/PERFORMANCE.md):
#:
#: * ``scalar``  — the legacy path: one RNG draw per decision, straight off
#:   the raw numpy generators. Kept as the parity reference.
#: * ``batched`` — identical control flow, but every stream serves scalar
#:   draws from prefetched blocks (:class:`~repro.sim.randomness.BufferedGenerator`).
#:   Byte-identical to ``scalar`` by construction; the default.
#: * ``fluid``   — batched draws plus the analytic burst fast path
#:   (:mod:`repro.engine.fluid`): eligible bursts skip the event loop
#:   entirely and replay the pipeline's closed-form timeline columnar-ly.
#:   Ineligible runs fall back to ``batched`` behaviour automatically.
KERNEL_MODES = ("scalar", "batched", "fluid")

#: Mode used when a consumer passes ``mode=None``.
DEFAULT_KERNEL_MODE = "batched"


def resolve_kernel_mode(mode: Optional[str]) -> str:
    """Validate and default a kernel-mode selector."""
    if mode is None:
        return DEFAULT_KERNEL_MODE
    if mode not in KERNEL_MODES:
        raise ValueError(
            f"unknown kernel mode {mode!r} (expected one of {KERNEL_MODES})"
        )
    return mode


def resolve_retry_policy(
    policy: Optional[RetryPolicy],
    scenario: Optional[FaultScenario],
    platform_default: Optional[RetryPolicy] = None,
) -> Optional[RetryPolicy]:
    """The one retry-resolution rule every consumer previously re-derived.

    Explicit policy wins; otherwise the platform default (bursts pass the
    profile's immediate-retry budget); otherwise retries are enabled only
    when a fault scenario makes them meaningful.
    """
    if policy is not None:
        return policy
    if platform_default is not None:
        return platform_default
    if scenario is not None:
        return ImmediateRetry()
    return None


@dataclass(frozen=True)
class ThrottleVerdict:
    """One admission decision: admit, back off ``wait_s``, or reject."""

    admitted: bool
    rejected: bool = False
    wait_s: float = 0.0


_ADMITTED = ThrottleVerdict(admitted=True)


@dataclass(frozen=True)
class DispatchCosts:
    """The warm/cold latency and billing treatment of one dispatch path.

    Centralizing these constants is what keeps warm-reuse semantics from
    drifting between consumers (the warm-parity property test drives both
    burst wave reuse and serving warm-pool hits through this object).
    """

    cold_start_s: float
    warm_dispatch_s: float
    cold_init_billed_s: float = 0.0

    def start_latency(self, warm: bool) -> float:
        return self.warm_dispatch_s if warm else self.cold_start_s

    def billed_seconds(self, exec_seconds: float, warm: bool) -> float:
        return exec_seconds + (0.0 if warm else self.cold_init_billed_s)


class SyncAttemptEnv(Protocol):
    """Consumer hooks for :meth:`DispatchKernel.run_synchronous_chain`.

    The kernel owns arbitration (throttle, crash, retry); the environment
    owns everything consumer-specific: warm-window bookkeeping, execution
    modeling, and per-outcome accounting.
    """

    def throttle_clock(self, launch_at: float) -> float:
        """Clock value for the token bucket (may clamp to keep it monotone)."""

    def on_throttled(self, chain: AttemptChain) -> None:
        """One 429 bounce was recorded for ``chain``."""

    def on_rejected(self, chain: AttemptChain) -> None:
        """The throttle rejected ``chain`` for good."""

    def is_warm(self, launch_at: float) -> bool:
        """Whether the dispatch at ``launch_at`` reuses a warm sandbox."""

    def attempt_seconds(self, chain: AttemptChain, warm: bool) -> float:
        """Model one attempt's execution time (draws noise/straggler RNG)."""

    def on_success(
        self, chain: AttemptChain, launch_at: float, warm: bool, exec_seconds: float
    ) -> None:
        """The attempt completed; bill it and record sojourns."""

    def on_crash(
        self,
        chain: AttemptChain,
        launch_at: float,
        warm: bool,
        exec_seconds: float,
        crash: CrashDecision,
    ) -> float:
        """The attempt crashed; bill the partial run and return the crash time."""

    def on_retry(self, chain: AttemptChain, delay: float) -> None:
        """A retry was scheduled ``delay`` seconds after the crash."""

    def on_exhausted(self, chain: AttemptChain) -> None:
        """Retries ran out; the chain's work is lost."""


class DispatchKernel:
    """Arbitration core shared by every dispatch path.

    One kernel serves one run (burst / serving horizon / stream): it binds
    the fault scenario to the run's RNG streams once, then hands out
    throttle verdicts, crash decisions, and retry delays to whichever
    driver (event-driven or synchronous) walks the attempt chains.
    """

    def __init__(
        self,
        rng: RandomStreams,
        scenario: Optional[FaultScenario] = None,
        retry_policy: Optional[RetryPolicy] = None,
        profile_failure_rate: float = 0.0,
        metrics: Optional[Any] = None,
        mode: Optional[str] = None,
    ) -> None:
        self.rng = rng
        self.mode = resolve_kernel_mode(mode)
        if self.mode != "scalar":
            # Batched draws are byte-identical to scalar draws per stream
            # (the BufferedGenerator contract), so flipping this on never
            # changes a seeded run's output — only its speed.
            rng.enable_batching()
        self.scenario: Optional[FaultScenario] = None
        self.injector: Optional[FaultInjector] = None
        self.bucket: Optional[TokenBucket] = None
        self.retry_policy = retry_policy
        self.profile_failure_rate = profile_failure_rate
        self.chains: dict[int, AttemptChain] = {}
        self._next_chain_id = 0
        self.configure_faults(scenario, profile_failure_rate, metrics)

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #
    def configure_faults(
        self,
        scenario: Optional[FaultScenario],
        profile_failure_rate: float = 0.0,
        metrics: Optional[Any] = None,
    ) -> None:
        """(Re)bind the fault scenario; used by bursts that configure at
        ``begin`` time rather than construction."""
        self.scenario = scenario
        self.profile_failure_rate = profile_failure_rate
        if scenario is not None:
            self.injector = scenario.build_injector(self.rng, profile_failure_rate)
            if metrics is not None:
                self.injector.bind_metrics(metrics)
            self.bucket = scenario.build_throttle()
        else:
            self.injector = None
            self.bucket = None

    def fresh_retry(self) -> Optional[RetryPolicy]:
        """A stateless-fresh copy of the resolved retry policy (per chain)."""
        return None if self.retry_policy is None else self.retry_policy.fresh()

    def fork(self, label: str) -> "DispatchKernel":
        """Clone seam for shadow replay.

        Returns an independent kernel with the same scenario, retry policy,
        and profile failure rate, on a child RNG family derived from
        ``label`` via :meth:`RandomStreams.spawn`. Spawning consumes no
        draws from the parent's streams, so forking mid-run never perturbs
        the live simulation — the same seed with and without forks produces
        bit-identical live output — while the fork itself is fully
        deterministic given (seed, label).
        """
        return DispatchKernel(
            self.rng.spawn(label),
            scenario=self.scenario,
            retry_policy=self.retry_policy,
            profile_failure_rate=self.profile_failure_rate,
            mode=self.mode,
        )

    # ------------------------------------------------------------------ #
    # Chain management
    # ------------------------------------------------------------------ #
    def new_chain(
        self,
        n_packed: int,
        payload: Any = None,
        retry: Optional[RetryPolicy] = None,
    ) -> AttemptChain:
        chain = AttemptChain(
            chain_id=self._next_chain_id,
            n_packed=n_packed,
            payload=payload,
            retry=retry,
        )
        self._next_chain_id += 1
        self.chains[chain.chain_id] = chain
        return chain

    # ------------------------------------------------------------------ #
    # Throttling (429 admission control)
    # ------------------------------------------------------------------ #
    def throttle_gate(self, chain: AttemptChain, now: float) -> ThrottleVerdict:
        """Admit one attempt, or bounce it off the token bucket.

        A bounce increments the chain's consecutive-429 counter; past the
        scenario's ``throttle_max_retries`` the verdict is a final
        rejection, otherwise a linear-backoff wait (base backoff times the
        bounce count, plus the bucket's own time-to-next-token).
        """
        if self.bucket is None or self.bucket.try_acquire(now):
            return _ADMITTED
        chain.throttle_tries += 1
        if chain.throttle_tries > self.scenario.throttle_max_retries:
            return ThrottleVerdict(admitted=False, rejected=True)
        wait = (
            self.scenario.throttle_backoff_s * chain.throttle_tries
            + self.bucket.seconds_until_token(now)
        )
        return ThrottleVerdict(admitted=False, wait_s=wait)

    # ------------------------------------------------------------------ #
    # Fault draws
    # ------------------------------------------------------------------ #
    def crash_decision(self, poisoned: bool = False) -> Optional[CrashDecision]:
        """Raw crash draw (no chain side effects); None without an injector."""
        if self.injector is None:
            return None
        return self.injector.crash_decision(poisoned=poisoned)

    def chain_crash_decision(self, chain: AttemptChain) -> Optional[CrashDecision]:
        """Crash draw for one attempt of ``chain``, poisoning it on a
        persistent fault so every later attempt crashes too."""
        decision = self.crash_decision(poisoned=chain.poisoned)
        if decision is not None and decision.persistent:
            chain.poisoned = True
        return decision

    def straggler_factor(self) -> float:
        return 1.0 if self.injector is None else self.injector.straggler_factor()

    def gray_factor(self, domain: Optional[int], now: float) -> float:
        """Gray-failure slowdown for a dispatch at ``domain`` (1.0 = healthy).

        Draw-free (see :meth:`FaultScenario.gray_factor`): consulting it
        never perturbs the RNG schedule of an otherwise-identical run.
        """
        if self.scenario is None:
            return 1.0
        return self.scenario.gray_factor(domain, now)

    def exec_noise_factor(self, sigma: float) -> float:
        return self.rng.lognormal_factor("exec", sigma)

    def correlated_event_times(self) -> list[float]:
        return [] if self.injector is None else self.injector.correlated_event_times()

    def correlated_kills(self, victims: int) -> list[bool]:
        return self.injector.correlated_kills(victims)

    # ------------------------------------------------------------------ #
    # Retry arbitration
    # ------------------------------------------------------------------ #
    def next_retry_delay(
        self,
        chain: AttemptChain,
        failed_attempt: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> Optional[float]:
        """Delay before re-invoking ``chain``, or None when retries ran out.

        On success the chain's attempt counter advances past
        ``failed_attempt`` (default: the chain's current attempt) and the
        decorrelated-jitter feedback state is updated.
        """
        policy = chain.retry if retry is None else retry
        if policy is None:
            return None
        if failed_attempt is None:
            failed_attempt = chain.attempt
        delay = policy.next_delay(failed_attempt, chain.prev_delay, self.rng.stream("retry"))
        if delay is None:
            return None
        chain.attempt = failed_attempt + 1
        chain.prev_delay = delay
        return delay

    # ------------------------------------------------------------------ #
    # Synchronous attempt walk (arithmetic clock)
    # ------------------------------------------------------------------ #
    def run_synchronous_chain(
        self, chain: AttemptChain, env: SyncAttemptEnv, launch_at: float
    ) -> None:
        """Walk ``chain`` to a terminal state on an arithmetic clock.

        The full lifecycle — throttle gate, warm check, execution draw,
        crash draw, retry arbitration — without a discrete-event simulator:
        each attempt's timestamps are computed directly and the next
        attempt's launch time is the crash time plus the retry delay. Used
        by dispatch paths whose attempts never interleave (streaming).
        """
        while True:
            if self.bucket is not None:
                now = env.throttle_clock(launch_at)
                verdict = self.throttle_gate(chain, now)
                if not verdict.admitted:
                    env.on_throttled(chain)
                    if verdict.rejected:
                        chain.lost = True
                        env.on_rejected(chain)
                        return
                    launch_at = now + verdict.wait_s
                    continue
            warm = env.is_warm(launch_at)
            exec_seconds = env.attempt_seconds(chain, warm)
            crash = self.chain_crash_decision(chain)
            if crash is None:
                chain.satisfied = True
                env.on_success(chain, launch_at, warm, exec_seconds)
                return
            crash_at = env.on_crash(chain, launch_at, warm, exec_seconds, crash)
            delay = self.next_retry_delay(chain)
            if delay is None:
                chain.lost = True
                env.on_exhausted(chain)
                return
            env.on_retry(chain, delay)
            launch_at = crash_at + delay
