"""Kubernetes pod model for the FuncX endpoint.

A pod hosts several serverless workers; Kubernetes caches container images
per node, so only the first pod on a node pays the full image install.
The endpoint converts a cluster description (nodes × cores/memory) plus a
pod shape into the platform-profile coefficients used by the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PodSpec:
    """Shape of one FuncX worker pod."""

    workers_per_pod: int = 4
    cores_per_pod: int = 6
    memory_mb_per_pod: int = 10240
    # Kubernetes pulls an image once per node and caches it; warm pods pay
    # only this fraction of the full container install.
    cache_hit_install_fraction: float = 0.15
    pod_start_base_s: float = 0.12  # pod sandbox start (no microVM boot)

    def __post_init__(self) -> None:
        if self.workers_per_pod < 1:
            raise ValueError("workers_per_pod must be >= 1")
        if not 0.0 < self.cache_hit_install_fraction <= 1.0:
            raise ValueError("cache_hit_install_fraction must be in (0, 1]")


@dataclass(frozen=True)
class ClusterSpec:
    """The cluster a FuncX endpoint manages.

    Defaults follow the paper's testbed: ~100 nodes of r5.2xlarge /
    r5.4xlarge EC2 VMs with 1000 cores total and ~20 TB of memory.
    """

    nodes: int = 100
    cores_per_node: int = 10
    memory_mb_per_node: int = 211_000

    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores_per_node
