"""FuncX-like on-premise serverless execution substrate.

FuncX [11] spawns the processes of parallel applications as serverless
workers in Kubernetes pods on a user-provided cluster. Relative to AWS
Lambda (paper Fig. 18 discussion):

* it scales **faster** — pods have lower start-up time than Firecracker
  microVMs, FuncX co-locates multiple workers in one pod, and Kubernetes'
  built-in container caching avoids repeated image installs;
* but packed execution is **slower** — Firecracker microVMs isolate
  network/compute/storage better, so co-located functions interfere more
  inside a pod than inside a microVM.

Both effects are captured as a :class:`~repro.platform.providers.PlatformProfile`
variant plus an endpoint wrapper mirroring the funcX client API.
"""

from repro.funcx.endpoint import FuncXEndpoint, funcx_profile
from repro.funcx.pods import PodSpec

__all__ = ["FuncXEndpoint", "funcx_profile", "PodSpec"]
