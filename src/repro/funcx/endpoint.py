"""FuncX endpoint: an on-prem platform profile plus a client-style facade.

The endpoint reuses the full serverless platform simulation with
coefficients derived from the pod/cluster specs:

* pods start faster than microVMs (``build_base_s`` lower) and Kubernetes'
  image caching shrinks the install bytes (``build_cache_factor``);
* co-locating several workers per pod divides the per-worker ship traffic;
* the cluster fabric is a fast local network (no cloud egress fees, no
  per-request billing — FuncX runs on hardware the user already owns, so
  "expense" on FuncX is reported as node-seconds via the same GB-second
  accounting for comparability);
* pods isolate co-runners *less* well than Firecracker microVMs:
  ``isolation_penalty`` > 1 raises packed-execution interference, and a
  small ``concurrency_leak`` models cross-pod contention on shared nodes.
"""

from __future__ import annotations

from typing import Optional

from repro.funcx.pods import ClusterSpec, PodSpec
from repro.platform.base import ServerlessPlatform
from repro.platform.invoker import BurstSpec
from repro.platform.metrics import RunResult
from repro.platform.providers import AWS_LAMBDA, PlatformProfile
from repro.workloads.base import AppSpec


def funcx_profile(
    pod: PodSpec = PodSpec(),
    cluster: ClusterSpec = ClusterSpec(),
) -> PlatformProfile:
    """Platform profile of a FuncX endpoint on the given cluster."""
    return AWS_LAMBDA.with_overrides(
        name="funcx",
        # The endpoint scheduler searches a 100-node cluster, not a cloud
        # fleet, and Kubernetes placement is cheaper per pod — but it still
        # serializes placement decisions, so the same super-linear shape
        # remains, ~15% faster at high concurrency (paper Fig. 18).
        sched_base_s=0.0015,
        sched_search_s=1.35e-4,
        # On-prem pods have no Lambda-style 15-minute execution cap.
        max_execution_seconds=7200.0,
        build_slots=cluster.nodes,
        # Workers co-located in one pod amortize the pod sandbox start and
        # the on-wire snapshot across the pod (paper Fig. 18 discussion:
        # "FuncX co-locates multiple workers inside one pod").
        build_base_s=pod.pod_start_base_s * (0.25 + 0.75 / pod.workers_per_pod),
        build_cache_factor=pod.cache_hit_install_fraction,
        ship_overhead_mb=96.0 / pod.workers_per_pod,
        uplink_gbps=120.0,
        # Pods isolate less well than Firecracker microVMs.
        isolation_penalty=2.1,
        concurrency_leak=0.08,
        exec_noise_sigma=0.012,
        # On-prem: no cloud billing lines; keep GB-second accounting as a
        # node-seconds proxy so expense comparisons remain meaningful.
        per_request_usd=0.0,
        storage_put_usd=0.0,
        storage_get_usd=0.0,
        egress_usd_per_gb=0.0,
        # Kubernetes overcommits CPU shares and memory limits across pods
        # (workers time-share nodes at high concurrency); the overcommit
        # factors below let a 100-node cluster admit a 5000-instance burst,
        # with the resulting contention captured by isolation_penalty and
        # concurrency_leak above.
        fleet_servers=cluster.nodes,
        server_cores=cluster.cores_per_node * 40,
        server_memory_mb=cluster.memory_mb_per_node * 3,
    )


class FuncXEndpoint:
    """funcX-client-style facade over the simulated on-prem platform."""

    def __init__(
        self,
        pod: PodSpec = PodSpec(),
        cluster: ClusterSpec = ClusterSpec(),
        seed: int = 0,
    ) -> None:
        self.pod = pod
        self.cluster = cluster
        self.profile = funcx_profile(pod, cluster)
        self.platform = ServerlessPlatform(self.profile, seed=seed)

    def map(
        self,
        app: AppSpec,
        concurrency: int,
        packing_degree: int = 1,
        provisioned_mb: Optional[int] = None,
    ) -> RunResult:
        """Run ``concurrency`` invocations of ``app`` on the endpoint."""
        spec = BurstSpec(
            app=app,
            concurrency=concurrency,
            packing_degree=packing_degree,
            provisioned_mb=provisioned_mb or self.pod.memory_mb_per_pod,
        )
        return self.platform.run_burst(spec)

    def measure_scaling_time(self, concurrency: int) -> float:
        return self.platform.measure_scaling_time(concurrency)
