"""Packing for sustained request streams (extension).

The paper evaluates one-shot concurrent bursts. Serverless services also
face *sustained* arrivals (the Xapian scenario between bursts): requests
arrive continuously and a dispatcher must decide how to group them into
packed instances. Packing now costs *batching delay* — a request waits
until its instance fills (or a timeout fires) — in exchange for the same
interference-vs-instance-count trade-off.

:class:`StreamingDispatcher` simulates a Poisson arrival stream dispatched
with a ``(degree, timeout)`` policy: an instance launches when ``degree``
requests have accumulated or the oldest waiting request has waited
``batch_timeout_s``. Warm instances are reused from a pool, so sustained
traffic mostly avoids the cold-start pipeline. A
:class:`~repro.faults.scenario.FaultScenario` can be injected into the
dispatch path: crashed attempts are billed up to the crash point and
re-executed under a :class:`~repro.faults.retry.RetryPolicy` (re-paying
payload egress), 429 throttling backs dispatches off, and stragglers
stretch individual attempts — all on dedicated random streams, so the
fault-free path stays byte-identical to the original dispatcher.

:class:`StreamingPlanner` picks the ``(degree, timeout)`` pair minimizing
cost per request subject to a latency QoS on the per-request sojourn time,
using the fitted interference model plus M/D/c-style waiting estimates, and
is validated against the simulation in the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.models import ExecutionTimeModel
from repro.engine import (
    AttemptChain,
    DispatchCosts,
    DispatchKernel,
    resolve_retry_policy,
)
from repro.faults.retry import RetryPolicy
from repro.faults.scenario import FaultScenario
from repro.platform.providers import PlatformProfile
from repro.serving.arrivals import ArrivalProcess, PoissonProcess
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.workloads.base import AppSpec


@dataclass(frozen=True)
class StreamingPolicy:
    """Dispatch policy: pack up to ``degree``, wait at most ``batch_timeout_s``."""

    degree: int
    batch_timeout_s: float

    def __post_init__(self) -> None:
        if self.degree < 1:
            raise ValueError("degree must be >= 1")
        if self.batch_timeout_s < 0:
            raise ValueError("batch timeout must be non-negative")


@dataclass
class StreamingResult:
    """Measured outcome of a streaming simulation."""

    policy: StreamingPolicy
    n_requests: int
    sojourn_times: list[float] = field(default_factory=list)
    batch_sizes: list[int] = field(default_factory=list)
    billed_gb_seconds: float = 0.0
    cold_starts: int = 0
    crashes: int = 0
    retries: int = 0
    failed_requests: int = 0      # crashed out of retries / throttled out
    throttled_attempts: int = 0   # 429 rejections at dispatch
    dropped_batches: int = 0      # batches that exhausted the 429 budget
    wasted_gb_seconds: float = 0.0
    retry_egress_gb: float = 0.0

    @property
    def completed_requests(self) -> int:
        return self.n_requests - self.failed_requests

    @property
    def mean_sojourn_s(self) -> float:
        return float(np.mean(self.sojourn_times))

    @property
    def p95_sojourn_s(self) -> float:
        return float(np.quantile(self.sojourn_times, 0.95))

    @property
    def mean_batch_size(self) -> float:
        return float(np.mean(self.batch_sizes))

    def cost_per_request_usd(self, profile: PlatformProfile) -> float:
        compute = self.billed_gb_seconds * profile.gb_second_usd
        requests = len(self.batch_sizes) * profile.per_request_usd
        egress = self.retry_egress_gb * profile.egress_usd_per_gb
        return (compute + requests + egress) / self.n_requests


class _StreamAttemptEnv:
    """Kernel attempt-walk hooks for the streaming dispatcher.

    Implements :class:`~repro.engine.kernel.SyncAttemptEnv`: the kernel
    arbitrates throttling/crashes/retries while this object owns the
    stream's warm-window bookkeeping, execution modeling, and
    :class:`StreamingResult` accounting. A chain's ``payload`` is the
    batch's list of arrival times.
    """

    def __init__(
        self,
        kernel: DispatchKernel,
        result: StreamingResult,
        state: dict,
        costs: DispatchCosts,
        exec_model: ExecutionTimeModel,
        exec_noise_sigma: float,
        io_mb: float,
        warm_pool_ttl_s: float,
        billed_gb: float,
    ) -> None:
        self.kernel = kernel
        self.result = result
        self.state = state
        self.costs = costs
        self.exec_model = exec_model
        self.exec_noise_sigma = exec_noise_sigma
        self.io_mb = io_mb
        self.warm_pool_ttl_s = warm_pool_ttl_s
        self.billed_gb = billed_gb

    def throttle_clock(self, launch_at: float) -> float:
        # The bucket clock must be monotone even though batch clocks
        # interleave (a retry reaches into the future).
        t = max(launch_at, self.state["bucket_clock"])
        self.state["bucket_clock"] = t
        return t

    def on_throttled(self, chain: AttemptChain) -> None:
        self.result.throttled_attempts += 1

    def on_rejected(self, chain: AttemptChain) -> None:
        self.result.dropped_batches += 1
        self.result.failed_requests += chain.n_packed

    def is_warm(self, launch_at: float) -> bool:
        return launch_at <= self.state["warm_until"]

    def attempt_seconds(self, chain: AttemptChain, warm: bool) -> float:
        if not warm:
            self.result.cold_starts += 1
        factor = self.kernel.exec_noise_factor(self.exec_noise_sigma)
        factor *= self.kernel.straggler_factor()
        exec_time = self.exec_model.predict(chain.n_packed) * factor
        self.result.batch_sizes.append(chain.n_packed)
        return exec_time

    def on_success(
        self, chain: AttemptChain, launch_at: float, warm: bool, exec_seconds: float
    ) -> None:
        finish = launch_at + self.costs.start_latency(warm) + exec_seconds
        self.state["warm_until"] = finish + self.warm_pool_ttl_s
        for arrived in chain.payload:
            self.result.sojourn_times.append(finish - arrived)
        self.result.billed_gb_seconds += exec_seconds * self.billed_gb

    def on_crash(
        self, chain: AttemptChain, launch_at: float, warm: bool,
        exec_seconds: float, crash,
    ) -> float:
        self.result.crashes += 1
        wasted = crash.at_fraction * exec_seconds * self.billed_gb
        self.result.billed_gb_seconds += wasted
        self.result.wasted_gb_seconds += wasted
        return (
            launch_at
            + self.costs.start_latency(warm)
            + crash.at_fraction * exec_seconds
        )

    def on_retry(self, chain: AttemptChain, delay: float) -> None:
        self.result.retries += 1
        self.result.retry_egress_gb += chain.n_packed * self.io_mb / 1024.0

    def on_exhausted(self, chain: AttemptChain) -> None:
        self.result.failed_requests += chain.n_packed


class StreamingDispatcher:
    """Simulates Poisson arrivals under a batch-and-pack policy."""

    def __init__(
        self,
        profile: PlatformProfile,
        app: AppSpec,
        exec_model: ExecutionTimeModel,
        seed: int = 0,
        cold_start_s: float = 1.5,
        warm_dispatch_s: float = 0.02,
        warm_pool_ttl_s: float = 120.0,
    ) -> None:
        self.profile = profile
        self.app = app
        self.exec_model = exec_model
        self.seed = seed
        self.cold_start_s = cold_start_s
        self.warm_dispatch_s = warm_dispatch_s
        self.warm_pool_ttl_s = warm_pool_ttl_s

    def run(
        self,
        policy: StreamingPolicy,
        arrival_rate_per_s: float,
        n_requests: int,
        repetition: int = 0,
        process: Optional[ArrivalProcess] = None,
        scenario: Optional[FaultScenario] = None,
        retry_policy: Optional[RetryPolicy] = None,
        kernel_mode: Optional[str] = None,
    ) -> StreamingResult:
        """Simulate ``n_requests`` arrivals under ``policy``.

        By default arrivals are homogeneous Poisson at
        ``arrival_rate_per_s`` (via :class:`repro.serving.arrivals.
        PoissonProcess`, byte-identical to the generator this class
        historically inlined). Pass any other
        :class:`~repro.serving.arrivals.ArrivalProcess` to drive the same
        dispatcher with diurnal, bursty, or trace-shaped traffic; the
        stream is then time-bounded at ``n_requests / rate`` and
        ``n_requests`` only sizes the horizon.

        ``scenario`` injects faults into the dispatch path (crashes,
        throttling, stragglers); ``retry_policy`` governs re-execution of
        crashed attempts (defaults to :class:`~repro.faults.retry.
        ImmediateRetry` when a scenario is given). Without a scenario the
        simulation is byte-identical to the fault-free dispatcher.
        """
        if arrival_rate_per_s <= 0:
            raise ValueError("arrival rate must be positive")
        if n_requests < 1:
            raise ValueError("need at least one request")
        rng = RandomStreams(self.seed).spawn(f"stream/r{repetition}")
        if process is None:
            arrivals = PoissonProcess(arrival_rate_per_s).sample_n(rng, n_requests)
        else:
            arrivals = process.sample(rng, n_requests / arrival_rate_per_s)
        if len(arrivals) == 0:
            raise ValueError("arrival process produced no arrivals in the horizon")
        n_requests = len(arrivals)
        # Fault/throttle/retry arbitration is the shared dispatch kernel's;
        # the dispatcher keeps only batching and warm-window bookkeeping.
        kernel = DispatchKernel(
            rng,
            scenario=scenario,
            retry_policy=resolve_retry_policy(retry_policy, scenario),
            profile_failure_rate=self.profile.failure_rate,
            mode=kernel_mode,
        )
        sim = Simulator()
        result = StreamingResult(policy=policy, n_requests=n_requests)
        waiting: list[float] = []  # arrival times of queued requests
        warm_until = -math.inf
        billed_gb = self.profile.max_memory_mb / 1024.0
        state = {"warm_until": warm_until, "timer": None, "bucket_clock": 0.0}
        env = _StreamAttemptEnv(
            kernel=kernel,
            result=result,
            state=state,
            costs=DispatchCosts(self.cold_start_s, self.warm_dispatch_s),
            exec_model=self.exec_model,
            exec_noise_sigma=self.profile.exec_noise_sigma,
            io_mb=self.app.io_mb,
            warm_pool_ttl_s=self.warm_pool_ttl_s,
            billed_gb=billed_gb,
        )

        def dispatch() -> None:
            if not waiting:
                return
            batch = waiting[: policy.degree]
            del waiting[: len(batch)]
            if state["timer"] is not None:
                state["timer"].cancel()
                state["timer"] = None
            if kernel.injector is not None:
                # The batch's whole fault story (429 backoffs, crashes,
                # retries) advances the kernel's arithmetic clock instead
                # of scheduling events, mirroring the fault-free inline
                # ``finish`` computation below.
                chain = kernel.new_chain(
                    n_packed=len(batch), payload=batch, retry=kernel.fresh_retry()
                )
                kernel.run_synchronous_chain(chain, env, sim.now)
                if waiting:
                    arm_timer()
                return
            start_latency = (
                self.warm_dispatch_s
                if sim.now <= state["warm_until"]
                else self.cold_start_s
            )
            if start_latency == self.cold_start_s:
                result.cold_starts += 1
            exec_time = self.exec_model.predict(len(batch)) * rng.lognormal_factor(
                "exec", self.profile.exec_noise_sigma
            )
            finish = sim.now + start_latency + exec_time
            state["warm_until"] = finish + self.warm_pool_ttl_s
            for arrived in batch:
                result.sojourn_times.append(finish - arrived)
            result.batch_sizes.append(len(batch))
            result.billed_gb_seconds += (
                exec_time * self.profile.max_memory_mb / 1024.0
            )
            # Re-arm the timer for any requests still waiting.
            if waiting:
                arm_timer()

        def arm_timer() -> None:
            if state["timer"] is not None:
                return
            oldest = waiting[0]
            deadline = oldest + policy.batch_timeout_s
            state["timer"] = sim.schedule(
                max(0.0, deadline - sim.now), timer_fired
            )

        def timer_fired() -> None:
            state["timer"] = None
            dispatch()

        def on_arrival(t: float) -> None:
            waiting.append(t)
            if len(waiting) >= policy.degree:
                dispatch()
            else:
                arm_timer()

        for t in arrivals:
            sim.schedule_at(float(t), on_arrival, float(t))
        sim.run()
        # Flush any tail still waiting when arrivals stop.
        while waiting:
            dispatch()
        return result


class StreamingPlanner:
    """Chooses ``(degree, timeout)`` under a sojourn-time QoS bound.

    The timeout *is* the latency guarantee: a request's sojourn is at most
    ``timeout + start_latency + ET(degree)`` regardless of the arrival
    process, because the oldest waiting request force-flushes its batch.
    The planner therefore budgets ``timeout(p) = safety·QoS − ET(p)`` and
    among feasible degrees picks the cheapest per request, estimating the
    expected batch fill as ``min(p, 1 + λ·timeout)``.
    """

    def __init__(
        self,
        profile: PlatformProfile,
        app: AppSpec,
        exec_model: ExecutionTimeModel,
        max_degree: Optional[int] = None,
    ) -> None:
        self.profile = profile
        self.app = app
        self.exec_model = exec_model
        self.max_degree = max_degree or app.max_packing_degree(profile.max_memory_mb)

    def estimate_sojourn_s(
        self, degree: int, arrival_rate_per_s: float, timeout_s: float
    ) -> float:
        batch_wait = min((degree - 1) / max(arrival_rate_per_s, 1e-9), timeout_s)
        return batch_wait + self.exec_model.predict(degree)

    def estimate_cost_per_request_usd(self, degree: int) -> float:
        et = self.exec_model.predict(degree)
        billed_gb = self.profile.max_memory_mb / 1024.0
        return (
            et * billed_gb * self.profile.gb_second_usd
            + self.profile.per_request_usd
        ) / degree

    def plan(
        self,
        arrival_rate_per_s: float,
        qos_sojourn_s: float,
        safety: float = 0.88,
        noise_margin: float = 1.05,
    ) -> StreamingPolicy:
        """Cheapest feasible policy; degree 1 if nothing meets the bound.

        ``safety`` reserves QoS headroom for the start latency;
        ``noise_margin`` inflates the predicted ET for execution noise.
        """
        if qos_sojourn_s <= 0:
            raise ValueError("QoS bound must be positive")
        if arrival_rate_per_s <= 0:
            raise ValueError("arrival rate must be positive")
        budget = qos_sojourn_s * safety
        best: Optional[tuple[float, StreamingPolicy]] = None
        for degree in range(1, self.max_degree + 1):
            et = self.exec_model.predict(degree) * noise_margin
            timeout = budget - et
            if timeout < 0:
                break  # ET grows with degree; deeper is also infeasible
            expected_fill = min(degree, 1.0 + arrival_rate_per_s * timeout)
            fill_degree = max(1, int(expected_fill))
            cost = self.estimate_cost_per_request_usd(fill_degree) * (
                fill_degree / expected_fill
            )
            policy = StreamingPolicy(degree=degree, batch_timeout_s=timeout)
            if best is None or cost < best[0] - 1e-12:
                best = (cost, policy)
        if best is None:
            return StreamingPolicy(degree=1, batch_timeout_s=0.0)
        return best[1]
