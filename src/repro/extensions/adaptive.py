"""Adaptive re-profiling when the platform drifts (paper Sec. 5 extension).

"If the cloud provider side mitigation is effective, the optimal packing
degree for ProPack is likely to decrease" — which means a fitted scaling
model goes stale when the provider improves (or degrades) its control
plane. :class:`AdaptiveProPack` wraps :class:`~repro.core.propack.ProPack`
and, after each executed burst, compares the realized service time against
the model's prediction; when the relative error exceeds a threshold for
``patience`` consecutive bursts, it discards the fitted models and
re-profiles on the next run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.propack import ProPack, ProPackOutcome
from repro.platform.base import ServerlessPlatform
from repro.workloads.base import AppSpec


@dataclass
class DriftObservation:
    """One burst's prediction-vs-reality comparison.

    Staleness shows up in the *scaling-time* prediction, not the service
    time: at a packed operating point the scaling term is a small share of
    service time, so even a 10x provider-side change barely moves the
    service error — while the packing decision it should trigger (a lower
    degree) goes unmade. We therefore track both errors.
    """

    app_name: str
    concurrency: int
    predicted_service_s: float
    realized_service_s: float
    predicted_scaling_s: float
    realized_scaling_s: float

    @property
    def relative_error(self) -> float:
        return abs(self.realized_service_s - self.predicted_service_s) / max(
            self.realized_service_s, 1e-9
        )

    @property
    def scaling_error(self) -> float:
        return abs(self.realized_scaling_s - self.predicted_scaling_s) / max(
            self.realized_scaling_s, self.predicted_scaling_s, 1e-9
        )

    @property
    def scaling_gap_s(self) -> float:
        return abs(self.realized_scaling_s - self.predicted_scaling_s)


class AdaptiveProPack:
    """ProPack with staleness detection and automatic re-profiling."""

    def __init__(
        self,
        platform: ServerlessPlatform,
        error_threshold: float = 0.15,
        patience: int = 2,
        scaling_floor_s: float = 5.0,
        probe_every: int = 3,
        probe_concurrency: int = 2000,
    ) -> None:
        """``scaling_floor_s`` is the absolute scaling-prediction gap below
        which drift is ignored (tiny gaps are fit noise, not drift).

        A burst executed at a well-packed operating point barely exercises
        the scaling curve, so drift in the platform's control plane can be
        invisible from run telemetry alone while the *decision* it should
        change (a lower packing degree) goes unmade. Every ``probe_every``
        runs the adaptor therefore issues one cheap no-op scaling probe at
        ``probe_concurrency`` — the same probe ProPack's profiler uses —
        and checks the model against it directly.
        """
        if not 0.0 < error_threshold < 1.0:
            raise ValueError("error threshold must be in (0, 1)")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        if scaling_floor_s < 0:
            raise ValueError("scaling floor must be non-negative")
        if probe_every < 1:
            raise ValueError("probe_every must be >= 1")
        self.platform = platform
        self.error_threshold = error_threshold
        self.patience = patience
        self.scaling_floor_s = scaling_floor_s
        self.probe_every = probe_every
        self.probe_concurrency = probe_concurrency
        self._runs_since_probe = 0
        self._propack = ProPack(platform)
        self._consecutive_misses = 0
        self.reprofile_count = 0
        self.history: list[DriftObservation] = []

    # ------------------------------------------------------------------ #
    @property
    def propack(self) -> ProPack:
        return self._propack

    def switch_platform(self, platform: ServerlessPlatform) -> None:
        """Point at a (possibly changed) platform without dropping models.

        Models are deliberately kept — the whole point is that the adaptor
        must *notice* the drift from prediction error, not be told.
        """
        self.platform = platform
        self._propack.platform = platform

    def _note(self, outcome: ProPackOutcome) -> DriftObservation:
        scaling_model = self._propack.scaling_model()
        observation = DriftObservation(
            app_name=outcome.plan.app.name,
            concurrency=outcome.plan.concurrency,
            predicted_service_s=outcome.plan.predicted_service_s,
            realized_service_s=outcome.result.service_time(),
            predicted_scaling_s=scaling_model.predict(outcome.plan.n_instances),
            realized_scaling_s=outcome.result.scaling_time,
        )
        self.history.append(observation)
        service_miss = observation.relative_error > self.error_threshold
        scaling_miss = (
            observation.scaling_error > self.error_threshold
            and observation.scaling_gap_s > self.scaling_floor_s
        )
        if service_miss or scaling_miss:
            self._consecutive_misses += 1
        else:
            self._consecutive_misses = 0
        if self._consecutive_misses >= self.patience:
            self._reprofile()
        return observation

    def _reprofile(self) -> None:
        """Drop every fitted model; the next run re-profiles from scratch."""
        self._propack._interference_cache.clear()
        self._propack._scaling_profile = None
        self._consecutive_misses = 0
        self.reprofile_count += 1

    # ------------------------------------------------------------------ #
    def run(
        self,
        app: AppSpec,
        concurrency: int,
        objective: str = "joint",
        qos_tail_bound_s: Optional[float] = None,
    ) -> ProPackOutcome:
        """Plan+execute one burst, then update the drift detector."""
        outcome = self._propack.run(
            app, concurrency, objective=objective, qos_tail_bound_s=qos_tail_bound_s
        )
        self._note(outcome)
        self._runs_since_probe += 1
        if self._runs_since_probe >= self.probe_every:
            self._runs_since_probe = 0
            self._probe_scaling()
        return outcome

    def _probe_scaling(self) -> None:
        """One cheap no-op probe burst; re-profile on a clear model miss."""
        predicted = self._propack.scaling_model().predict(self.probe_concurrency)
        realized = self.platform.measure_scaling_time(self.probe_concurrency)
        gap = abs(predicted - realized)
        error = gap / max(predicted, realized, 1e-9)
        if error > self.error_threshold and gap > self.scaling_floor_s:
            self._reprofile()

    @property
    def last_error(self) -> Optional[float]:
        return self.history[-1].relative_error if self.history else None
