"""Online failure-adaptive packing control.

The failure-aware planner (:mod:`repro.core.reliability`) prices retries
*a priori* from the profile's failure rate — but the observed rate drifts
(deploy storms, AZ incidents, noisy neighbours). The
:class:`FailureAdaptiveProPack` controller closes the loop from telemetry:
it watches the observed per-attempt failure rate of recent bursts and,
when the windowed rate crosses a threshold, degrades the packing degree
geometrically (each degradation step halves the blast radius of the next
crash). When the observed rate falls back under the threshold the degree
recovers one step per healthy burst.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import Optional

from repro.core.propack import ProPack, ProPackOutcome
from repro.core.reliability import FailurePenalty
from repro.platform.base import ServerlessPlatform
from repro.workloads.base import AppSpec


@dataclass(frozen=True)
class ControllerDecision:
    """One burst's control action, for post-hoc inspection."""

    planned_degree: int
    executed_degree: int
    windowed_failure_rate: float
    degrade_steps: int


class FailureAdaptiveProPack:
    """ProPack with an observed-failure-rate feedback controller."""

    def __init__(
        self,
        platform: ServerlessPlatform,
        threshold: float = 0.1,
        window: int = 5,
        degrade_factor: float = 0.5,
        max_degrade_steps: int = 4,
        failure_aware: bool = True,
    ) -> None:
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 < degrade_factor < 1.0:
            raise ValueError("degrade_factor must be in (0, 1)")
        if max_degrade_steps < 1:
            raise ValueError("max_degrade_steps must be >= 1")
        self.platform = platform
        self.propack = ProPack(platform)
        self.threshold = threshold
        self.degrade_factor = degrade_factor
        self.max_degrade_steps = max_degrade_steps
        self.failure_aware = failure_aware
        self._rates: deque[float] = deque(maxlen=window)
        self._degrade_steps = 0
        self.decisions: list[ControllerDecision] = []

    # ------------------------------------------------------------------ #
    @property
    def windowed_failure_rate(self) -> float:
        if not self._rates:
            return 0.0
        return sum(self._rates) / len(self._rates)

    @property
    def degrade_steps(self) -> int:
        return self._degrade_steps

    def effective_degree(self, planned: int) -> int:
        """The planned degree after the current degradation steps."""
        return max(1, int(planned * self.degrade_factor**self._degrade_steps))

    # ------------------------------------------------------------------ #
    def run(
        self,
        app: AppSpec,
        concurrency: int,
        objective: str = "joint",
        failure: Optional[FailurePenalty] = None,
    ) -> ProPackOutcome:
        """Plan, apply the controller's degradation, execute, observe."""
        plan, qos_decision = self.propack.plan(
            app,
            concurrency,
            objective=objective,
            failure_aware=self.failure_aware,
            failure=failure,
        )
        degree = self.effective_degree(plan.degree)
        if degree != plan.degree:
            plan = replace(
                plan,
                degree=degree,
                predicted_service_s=self.propack.optimizer(
                    app, concurrency, failure=failure
                ).service.predict(degree),
            )
        result = self.platform.run_burst(plan.burst_spec())
        self._observe(result.observed_failure_rate)
        self.decisions.append(
            ControllerDecision(
                planned_degree=plan.degree if degree == plan.degree else degree,
                executed_degree=degree,
                windowed_failure_rate=self.windowed_failure_rate,
                degrade_steps=self._degrade_steps,
            )
        )
        return ProPackOutcome(
            plan=plan,
            result=result,
            interference_profile=self.propack.interference_profile(app),
            scaling_profile=self.propack.scaling_profile(),
            qos_decision=qos_decision,
        )

    def _observe(self, rate: float) -> None:
        self._rates.append(rate)
        if self.windowed_failure_rate > self.threshold:
            self._degrade_steps = min(self.max_degrade_steps, self._degrade_steps + 1)
        elif self._degrade_steps > 0:
            self._degrade_steps -= 1
