"""Simulated execution of mixed-application packing plans.

Validates :mod:`~repro.extensions.mixed`'s analytical planner against the
same discrete-event substrate the single-app pipeline uses: every group
becomes one instance (one placement request, one container build+ship —
the container carries the union runtime, sized by its largest member's
image), and the instance executes for the group's interference-model
makespan plus execution noise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.network import NetworkFabric
from repro.cluster.registry import FunctionImage
from repro.cluster.server import ServerPool
from repro.extensions.mixed import MixedGroup, MixedInterferenceModel, MixedPlan
from repro.platform.billing import BillingModel
from repro.platform.container import ContainerPipeline
from repro.platform.metrics import InstanceRecord, RunResult
from repro.platform.providers import PlatformProfile
from repro.platform.scheduler import PlacementScheduler
from repro.platform.storage import ObjectStore
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams


def _group_image(group: MixedGroup) -> FunctionImage:
    """The union container: sized by the largest member image, plus the
    extra apps' code (runtimes/dependencies overlap heavily in practice)."""
    largest = max(group.apps, key=lambda a: a.code_mb + a.runtime_mb + a.dependencies_mb)
    extra_code = sum(a.code_mb for a in group.apps if a is not largest)
    return FunctionImage(
        name="+".join(sorted({a.name for a in group.apps})),
        code_mb=largest.code_mb + extra_code,
        runtime_mb=largest.runtime_mb,
        dependencies_mb=largest.dependencies_mb,
    )


@dataclass
class MixedRunResult:
    """A mixed burst's measurements (thin wrapper around RunResult)."""

    run: RunResult
    plan: MixedPlan

    @property
    def service_time(self) -> float:
        return self.run.service_time()

    @property
    def scaling_time(self) -> float:
        return self.run.scaling_time

    @property
    def expense_usd(self) -> float:
        return self.run.expense.total_usd


class MixedBurstSimulator:
    """Executes a :class:`MixedPlan` on the discrete-event substrate."""

    def __init__(self, profile: PlatformProfile, seed: int = 0) -> None:
        self.profile = profile
        self.seed = seed

    def run(self, plan: MixedPlan, repetition: int = 0) -> MixedRunResult:
        if not plan.groups:
            raise ValueError("cannot execute an empty plan")
        rng = RandomStreams(self.seed).spawn(f"mixed/r{repetition}")
        sim = Simulator()
        pool = ServerPool(
            self.profile.fleet_servers,
            self.profile.server_cores,
            self.profile.server_memory_mb,
        )
        network = NetworkFabric(sim, self.profile.uplink_gbps)
        scheduler = PlacementScheduler(
            sim, pool, self.profile.sched_base_s, self.profile.sched_search_s
        )
        pipeline = ContainerPipeline(
            sim,
            network,
            rng,
            build_slots=self.profile.build_slots,
            build_rate_mb_s=self.profile.build_rate_mb_s,
            build_base_s=self.profile.build_base_s,
            ship_overhead_mb=self.profile.ship_overhead_mb,
            build_cache_factor=self.profile.build_cache_factor,
        )
        model = MixedInterferenceModel(self.profile.isolation_penalty)
        store = ObjectStore()
        records: list[InstanceRecord] = []

        def placed(server, record: InstanceRecord, group: MixedGroup) -> None:
            record.sched_done = sim.now
            maybe_ship(record, group)

        def built(record: InstanceRecord, group: MixedGroup) -> None:
            record.built_at = sim.now
            maybe_ship(record, group)

        def maybe_ship(record: InstanceRecord, group: MixedGroup) -> None:
            if record.sched_done is None or record.built_at is None:
                return
            pipeline.ship(_group_image(group), shipped, record, group)

        def shipped(record: InstanceRecord, group: MixedGroup) -> None:
            record.shipped_at = sim.now
            record.exec_start = sim.now
            duration = model.instance_execution_seconds(group) * rng.lognormal_factor(
                "exec", self.profile.exec_noise_sigma
            )
            sim.schedule(duration, finished, record, group)

        def finished(record: InstanceRecord, group: MixedGroup) -> None:
            record.exec_end = sim.now
            for app, count in group.members:
                store.record_instance(app, count)

        for i, group in enumerate(plan.groups):
            record = InstanceRecord(
                instance_id=i,
                n_packed=group.size,
                invoked_at=sim.now,
                provisioned_mb=self.profile.max_memory_mb,
            )
            records.append(record)
            scheduler.request_placement(
                self.profile.cores_per_instance,
                record.provisioned_mb,
                placed,
                record,
                group,
            )
            pipeline.build(_group_image(group), built, record, group)
        sim.run()

        expense = BillingModel(self.profile).burst_expense(records, store.usage)
        total_functions = sum(g.size for g in plan.groups)
        run = RunResult(
            platform_name=self.profile.name,
            app_name="+".join(sorted(plan.functions_packed())),
            concurrency=total_functions,
            packing_degree=0,  # heterogeneous — degree varies per group
            records=records,
            expense=expense,
        )
        return MixedRunResult(run=run, plan=plan)
