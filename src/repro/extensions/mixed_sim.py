"""Simulated execution of mixed-application packing plans.

Validates :mod:`~repro.extensions.mixed`'s analytical planner against the
same discrete-event substrate the single-app pipeline uses: every group
becomes one instance (one placement request, one container build+ship —
the container carries the union runtime, sized by its largest member's
image), and the instance executes for the group's interference-model
makespan plus execution noise.

The lifecycle itself (placement ∥ build → ship → execute) is the shared
:class:`~repro.engine.burst.BurstDispatchKernel`; this module only
overrides its heterogeneity hooks — per-group union images, the mixed
interference model, per-member store accounting — and leaves cluster
occupancy untouched (groups never return capacity mid-burst, matching the
planner's all-at-once execution model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cluster.network import NetworkFabric
from repro.cluster.registry import FunctionImage
from repro.cluster.server import ServerPool
from repro.engine.burst import BurstDispatchKernel, BurstSpec
from repro.extensions.mixed import MixedGroup, MixedInterferenceModel, MixedPlan
from repro.faults.retry import ImmediateRetry
from repro.platform.billing import BillingModel
from repro.platform.container import ContainerPipeline
from repro.platform.instance import FunctionInstance
from repro.platform.metrics import InstanceRecord, RunResult
from repro.platform.providers import PlatformProfile
from repro.platform.scheduler import PlacementScheduler
from repro.platform.storage import ObjectStore, StorageUsage
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams


def _group_image(group: MixedGroup) -> FunctionImage:
    """The union container: sized by the largest member image, plus the
    extra apps' code (runtimes/dependencies overlap heavily in practice)."""
    largest = max(group.apps, key=lambda a: a.code_mb + a.runtime_mb + a.dependencies_mb)
    extra_code = sum(a.code_mb for a in group.apps if a is not largest)
    return FunctionImage(
        name="+".join(sorted({a.name for a in group.apps})),
        code_mb=largest.code_mb + extra_code,
        runtime_mb=largest.runtime_mb,
        dependencies_mb=largest.dependencies_mb,
    )


@dataclass
class MixedRunResult:
    """A mixed burst's measurements (thin wrapper around RunResult).

    ``storage`` keeps the run's object-store usage so the same records can
    be re-billed post hoc under a different billing fidelity (dynamics are
    billing-independent; see ``repro.fusion``).
    """

    run: RunResult
    plan: MixedPlan
    storage: Optional[StorageUsage] = None

    @property
    def service_time(self) -> float:
        return self.run.service_time()

    @property
    def scaling_time(self) -> float:
        return self.run.scaling_time

    @property
    def expense_usd(self) -> float:
        return self.run.expense.total_usd


class _MixedBurstKernel(BurstDispatchKernel):
    """Burst kernel specialized for heterogeneous (multi-app) groups.

    Each chain's payload is its :class:`MixedGroup`. Instances are not
    tracked or released: the mixed planner models one synchronous wave, so
    server occupancy stays claimed for the whole burst (releasing it would
    perturb later placements).
    """

    def __init__(self, *args, model: MixedInterferenceModel, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._model = model

    def begin_plan(self, spec: BurstSpec, plan: MixedPlan) -> None:
        """Enqueue every group of ``plan`` at the current simulation time.

        ``spec`` carries only burst-wide defaults (app name, noise-neutral
        factors); sizing comes from the plan's heterogeneous groups.
        """
        self._spec = spec
        self._image = None
        self._concurrency_level = len(plan.groups)
        self._invoked_at = self.sim.now
        # Inherited failure handling (dormant on fault-free profiles).
        self.retry_policy = ImmediateRetry(self.profile.max_retries)
        self._retry_policy = self.fresh_retry()
        self._provisioned = self.profile.max_memory_mb
        self._instances = {}
        for group in plan.groups:
            chain = self.new_chain(n_packed=group.size, payload=group)
            self._admit(chain, attempt=1, retry_delay=0.0)
        self._pending_functions = 0

    # --- heterogeneity hooks ------------------------------------------ #
    def _group_for(self, record: InstanceRecord) -> MixedGroup:
        return self._record_chain[record.instance_id].payload

    def _image_for(self, record: InstanceRecord) -> FunctionImage:
        return _group_image(self._group_for(record))

    def _modeled_exec_seconds(self, record: InstanceRecord) -> float:
        return self._model.instance_execution_seconds(self._group_for(record))

    def _make_instance(self, server, record: InstanceRecord) -> Optional[FunctionInstance]:
        return None  # occupancy stays claimed; see class docstring

    def _release_instance(self, instance: Optional[FunctionInstance]) -> None:
        pass

    def _record_completion(self, record: InstanceRecord) -> None:
        for app, count in self._group_for(record).members:
            self.store.record_instance(app, count)


class MixedBurstSimulator:
    """Executes a :class:`MixedPlan` on the discrete-event substrate."""

    def __init__(
        self,
        profile: PlatformProfile,
        seed: int = 0,
        kernel_mode: Optional[str] = None,
    ) -> None:
        self.profile = profile
        self.seed = seed
        #: RNG mode for the dispatch kernel (``None`` → the engine default,
        #: batched). The mixed planner overrides kernel hooks, so the fluid
        #: closed form never applies here; scalar/batched stay
        #: byte-identical.
        self.kernel_mode = kernel_mode

    def run(self, plan: MixedPlan, repetition: int = 0) -> MixedRunResult:
        if not plan.groups:
            raise ValueError("cannot execute an empty plan")
        rng = RandomStreams(self.seed).spawn(f"mixed/r{repetition}")
        sim = Simulator()
        pool = ServerPool(
            self.profile.fleet_servers,
            self.profile.server_cores,
            self.profile.server_memory_mb,
        )
        network = NetworkFabric(sim, self.profile.uplink_gbps)
        scheduler = PlacementScheduler(
            sim, pool, self.profile.sched_base_s, self.profile.sched_search_s
        )
        pipeline = ContainerPipeline(
            sim,
            network,
            rng,
            build_slots=self.profile.build_slots,
            build_rate_mb_s=self.profile.build_rate_mb_s,
            build_base_s=self.profile.build_base_s,
            ship_overhead_mb=self.profile.ship_overhead_mb,
            build_cache_factor=self.profile.build_cache_factor,
        )
        model = MixedInterferenceModel(self.profile.isolation_penalty)
        store = ObjectStore()
        total_functions = sum(g.size for g in plan.groups)
        kernel = _MixedBurstKernel(
            sim,
            self.profile,
            scheduler,
            pipeline,
            store,
            rng,
            interference=None,  # the mixed model replaces the homogeneous one
            enforce_timeout=False,
            model=model,
            mode=self.kernel_mode,
        )
        # Burst-wide defaults only: noise-neutral factors, max-memory
        # provisioning (the paper's setup); group sizing is per chain.
        spec = BurstSpec(
            app=plan.groups[0].apps[0],
            concurrency=total_functions,
            packing_degree=1,
        )
        kernel.begin_plan(spec, plan)
        sim.run()

        records = kernel._records
        expense = BillingModel(self.profile).burst_expense(records, store.usage)
        run = RunResult(
            platform_name=self.profile.name,
            app_name="+".join(sorted(plan.functions_packed())),
            concurrency=total_functions,
            packing_degree=0,  # heterogeneous — degree varies per group
            records=records,
            expense=expense,
        )
        return MixedRunResult(run=run, plan=plan, storage=store.usage)
