"""Mixed-application packing (paper Sec. 5 extension).

The evaluated ProPack packs functions of one application per instance. This
extension models heterogeneous groups: the interference a function suffers
is driven by the *other* residents' memory pressure, so the single-app
exponential generalizes per member ``i`` of group ``G`` to::

    ET_i(G) = base_i * exp(isolation * Σ_{j ∈ G, j ≠ i} pressure_j * mem_j)

and the instance finishes with its slowest member:
``ET(G) = max_i ET_i(G)``. With a homogeneous group of size ``p`` this
reduces exactly to the paper's Eq. 1 form (``exp(pressure·mem·(p−1))``),
so the extension is a strict generalization.

:class:`MixedPacker` plans groups for a multi-app demand under the
instance memory cap and the platform execution cap, either *segregated*
(same-app groups only — the paper's single-user security posture) or
*mixed* (first-fit decreasing over the combined pressure budget). The
planner's value is measured by predicted service time and expense via the
same scaling model ProPack already fits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.models import ScalingTimeModel
from repro.platform.providers import PlatformProfile
from repro.workloads.base import AppSpec


@dataclass(frozen=True)
class MixedGroup:
    """One instance's residents: (app, count) pairs."""

    members: tuple[tuple[AppSpec, int], ...]

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("a group needs at least one member")
        if any(count < 1 for _, count in self.members):
            raise ValueError("member counts must be >= 1")

    @property
    def size(self) -> int:
        return sum(count for _, count in self.members)

    @property
    def memory_mb(self) -> int:
        return sum(app.mem_mb * count for app, count in self.members)

    @property
    def apps(self) -> list[AppSpec]:
        return [app for app, _ in self.members]

    def pressure_sum(self) -> float:
        """Total memory-pressure of all residents (GB-weighted)."""
        return sum(
            app.pressure_per_gb * app.mem_gb * count for app, count in self.members
        )

    def is_homogeneous(self) -> bool:
        return len(self.members) == 1


class MixedInterferenceModel:
    """Execution-time model for heterogeneous groups."""

    def __init__(self, isolation_penalty: float = 1.0) -> None:
        if isolation_penalty <= 0:
            raise ValueError("isolation penalty must be positive")
        self.isolation_penalty = isolation_penalty

    def member_execution_seconds(self, group: MixedGroup, app: AppSpec) -> float:
        """ET of one ``app`` function inside ``group``."""
        if app not in group.apps:
            raise ValueError(f"{app.name} is not a member of the group")
        others = group.pressure_sum() - app.pressure_per_gb * app.mem_gb
        return app.base_seconds * math.exp(self.isolation_penalty * others)

    def instance_execution_seconds(self, group: MixedGroup) -> float:
        """The group's makespan: its slowest member."""
        return max(self.member_execution_seconds(group, app) for app in group.apps)


@dataclass
class MixedPlan:
    """A packing plan over a multi-application demand."""

    groups: list[MixedGroup]
    segregated: bool

    @property
    def n_instances(self) -> int:
        return len(self.groups)

    def functions_packed(self) -> dict[str, int]:
        packed: dict[str, int] = {}
        for group in self.groups:
            for app, count in group.members:
                packed[app.name] = packed.get(app.name, 0) + count
        return packed

    def predicted_service_time(
        self, model: MixedInterferenceModel, scaling: ScalingTimeModel
    ) -> float:
        """Scaling of the instance burst plus the slowest instance."""
        slowest = max(model.instance_execution_seconds(g) for g in self.groups)
        return scaling.predict(self.n_instances) + slowest

    def predicted_expense_usd(
        self, model: MixedInterferenceModel, profile: PlatformProfile
    ) -> float:
        billed_gb = profile.max_memory_mb / 1024.0
        total = 0.0
        for group in self.groups:
            et = model.instance_execution_seconds(group)
            total += et * billed_gb * profile.gb_second_usd + profile.per_request_usd
        return total


class MixedPacker:
    """Plans instance groups for a multi-application demand."""

    def __init__(
        self,
        profile: PlatformProfile,
        isolation_penalty: Optional[float] = None,
        latency_safety: float = 0.98,
    ) -> None:
        self.profile = profile
        self.model = MixedInterferenceModel(
            isolation_penalty if isolation_penalty is not None
            else profile.isolation_penalty
        )
        self.latency_safety = latency_safety

    # ------------------------------------------------------------------ #
    def _fits(self, members: list[tuple[AppSpec, int]], app: AppSpec) -> bool:
        """Would adding one ``app`` function keep the group feasible?"""
        trial = _bump(members, app)
        group = MixedGroup(tuple(trial))
        if group.memory_mb > self.profile.max_memory_mb:
            return False
        cap = self.profile.max_execution_seconds * self.latency_safety
        return self.model.instance_execution_seconds(group) <= cap

    def pack_segregated(
        self, demand: dict[AppSpec, int], degrees: dict[AppSpec, int]
    ) -> MixedPlan:
        """Same-app groups at per-app degrees (the paper's deployment)."""
        groups: list[MixedGroup] = []
        for app, count in demand.items():
            degree = degrees[app]
            if degree < 1:
                raise ValueError(f"degree for {app.name} must be >= 1")
            full, rest = divmod(count, degree)
            groups.extend(MixedGroup(((app, degree),)) for _ in range(full))
            if rest:
                groups.append(MixedGroup(((app, rest),)))
        return MixedPlan(groups=groups, segregated=True)

    def pack_mixed(self, demand: dict[AppSpec, int]) -> MixedPlan:
        """First-fit decreasing by per-function pressure contribution.

        High-pressure functions are placed first so each lands in the group
        where it raises the makespan least; low-pressure functions then fill
        the remaining memory/latency headroom.
        """
        queue: list[AppSpec] = []
        for app, count in demand.items():
            if count < 0:
                raise ValueError("demand counts must be non-negative")
            queue.extend([app] * count)
        queue.sort(key=lambda a: a.pressure_per_gb * a.mem_gb, reverse=True)

        bins: list[list[tuple[AppSpec, int]]] = []
        for app in queue:
            placed = False
            best_bin = None
            best_makespan = math.inf
            for members in bins:
                if not self._fits(members, app):
                    continue
                trial = MixedGroup(tuple(_bump(members, app)))
                makespan = self.model.instance_execution_seconds(trial)
                if makespan < best_makespan:
                    best_makespan = makespan
                    best_bin = members
                    placed = True
            if placed:
                _bump_inplace(best_bin, app)
            else:
                bins.append([(app, 1)])
        return MixedPlan(
            groups=[MixedGroup(tuple(members)) for members in bins],
            segregated=False,
        )


def _bump(members: Sequence[tuple[AppSpec, int]], app: AppSpec) -> list[tuple[AppSpec, int]]:
    out = []
    found = False
    for member_app, count in members:
        if member_app is app or member_app.name == app.name:
            out.append((member_app, count + 1))
            found = True
        else:
            out.append((member_app, count))
    if not found:
        out.append((app, 1))
    return out


def _bump_inplace(members: list[tuple[AppSpec, int]], app: AppSpec) -> None:
    for i, (member_app, count) in enumerate(members):
        if member_app is app or member_app.name == app.name:
            members[i] = (member_app, count + 1)
            return
    members.append((app, 1))
