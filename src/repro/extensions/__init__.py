"""Extensions beyond the paper's evaluated system, grounded in its
discussion sections:

* :mod:`~repro.extensions.mixed` — packing functions of *different*
  applications into one instance (paper Sec. 5, "packing functions of
  different characteristics presents new modeling challenges — ProPack can
  be extended to account for those").
* :mod:`~repro.extensions.adaptive` — re-profiling when the platform's
  scaling behaviour drifts (paper Sec. 5, provider-side mitigation changes
  the optimal packing degree over time).
* :mod:`~repro.extensions.campaigns` — *amortization campaigns*:
  amortizing the one-time profiling
  overhead over repeated runs (paper Sec. 2.2: "in practice, this overhead
  will be much lower due to amortization over thousands of applications
  and runs").
* :mod:`~repro.extensions.failsafe` — online packing-degree degradation
  when the observed failure rate of recent bursts crosses a threshold.
"""

from repro.extensions.adaptive import AdaptiveProPack
from repro.extensions.campaigns import CampaignReport, run_campaign
from repro.extensions.failsafe import ControllerDecision, FailureAdaptiveProPack
from repro.extensions.mixed import MixedGroup, MixedInterferenceModel, MixedPacker
from repro.extensions.mixed_sim import MixedBurstSimulator
from repro.extensions.skewaware import (
    SkewAwareExecutionModel,
    SkewAwareOptimizer,
    straggler_factor,
)
from repro.extensions.streaming import (
    StreamingDispatcher,
    StreamingPlanner,
    StreamingPolicy,
)

__all__ = [
    "AdaptiveProPack",
    "CampaignReport",
    "run_campaign",
    "ControllerDecision",
    "FailureAdaptiveProPack",
    "MixedGroup",
    "MixedInterferenceModel",
    "MixedPacker",
    "MixedBurstSimulator",
    "SkewAwareExecutionModel",
    "SkewAwareOptimizer",
    "straggler_factor",
    "StreamingDispatcher",
    "StreamingPlanner",
    "StreamingPolicy",
]
