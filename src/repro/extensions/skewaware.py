"""Skew-aware packing (extension; closes the gap ablation A4 exposes).

With heterogeneous inputs a packed instance finishes with its slowest
function, so the homogeneous models under-predict packed execution and
ProPack over-packs — at high skew the naive plan can lose to no packing
outright. This module corrects both models analytically:

* the execution term gains the expected *straggler factor* — the mean of
  the maximum of ``p`` unit-mean lognormal work draws, computed by numeric
  quadrature over the order-statistic density;
* the billed instance time gains the same factor (you pay until the last
  packed function finishes);
* the *service* term additionally accounts for the burst-wide straggler:
  the total (or tail/median quantile) over all ``C`` function draws, which
  multiplies whichever per-instance execution time the degree choice
  produces.

The planner then re-runs the standard degree optimization over the
corrected curves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.core.models import ExecutionTimeModel, ScalingTimeModel
from repro.core.optimizer import PackingOptimizer
from repro.platform.providers import PlatformProfile
from repro.workloads.base import AppSpec


def lognormal_sigma(cv: float) -> float:
    """Log-space sigma of a lognormal with coefficient of variation ``cv``."""
    if cv < 0:
        raise ValueError("cv must be non-negative")
    return math.sqrt(math.log1p(cv * cv))


def straggler_factor(n: int, cv: float) -> float:
    """E[max of ``n`` unit-mean lognormal draws], by numeric quadrature.

    ``E[max] = ∫ n Φ(z)^{n-1} φ(z) exp(σz - σ²/2) dz`` — the order-statistic
    density of the standard-normal max, pushed through the lognormal map.
    (A Blom plug-in underestimates by 3-7% because it approximates the
    median of the max, and Jensen's inequality bites on the exp.)
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if cv <= 0.0 or n == 1:
        return 1.0
    sigma = lognormal_sigma(cv)
    z = np.linspace(-8.0, 8.0 + sigma, 4001)
    density = n * stats.norm.cdf(z) ** (n - 1) * stats.norm.pdf(z)
    values = np.exp(sigma * z - 0.5 * sigma * sigma)
    return float(np.trapezoid(density * values, z))


def quantile_factor(n: int, quantile: float, cv: float) -> float:
    """Unit-mean lognormal quantile of the ``quantile``-th order statistic
    over ``n`` draws (the burst-wide straggler for tail/median merits)."""
    if not 0.0 < quantile <= 1.0:
        raise ValueError("quantile must be in (0, 1]")
    if cv <= 0.0:
        return 1.0
    sigma = lognormal_sigma(cv)
    if quantile >= 1.0:
        return straggler_factor(n, cv)
    z = float(stats.norm.ppf(quantile))
    return math.exp(sigma * z - 0.5 * sigma * sigma)


@dataclass(frozen=True)
class SkewAwareExecutionModel:
    """Wraps Eq. 1's model with the per-instance straggler factor."""

    base: ExecutionTimeModel
    cv: float

    @property
    def coeff_a(self) -> float:
        return self.base.coeff_a

    @property
    def coeff_b(self) -> float:
        return self.base.coeff_b

    @property
    def mem_gb(self) -> float:
        return self.base.mem_gb

    def predict(self, degree: float) -> float:
        return self.base.predict(degree) * straggler_factor(int(degree), self.cv)

    def predict_many(self, degrees) -> np.ndarray:
        return np.asarray([self.predict(d) for d in degrees])

    def max_degree_within(self, latency_bound_s: float) -> int:
        """Largest degree whose skew-inflated ET stays within the bound."""
        cap = self.base.max_degree_within(latency_bound_s)
        degree = 1
        for d in range(1, cap + 1):
            if self.predict(d) <= latency_bound_s:
                degree = d
            else:
                break
        return degree


class SkewAwareOptimizer(PackingOptimizer):
    """Degree optimization over skew-corrected service/expense curves."""

    def __init__(
        self,
        exec_model: ExecutionTimeModel,
        scaling_model: ScalingTimeModel,
        app: AppSpec,
        profile: PlatformProfile,
        concurrency: int,
        cv: float,
    ) -> None:
        self.cv = cv
        skewed = SkewAwareExecutionModel(base=exec_model, cv=cv)
        super().__init__(
            exec_model=skewed,
            scaling_model=scaling_model,
            app=app,
            profile=profile,
            concurrency=concurrency,
        )

    # The burst-wide straggler multiplies the exec term of the *service*
    # prediction: the last completion over C draws, not just over one
    # instance's p draws (which the exec model already covers).
    def _burst_factor(self, merit: str) -> float:
        quantile = {"total": 1.0, "tail": 0.95, "median": 0.5}[merit]
        per_instance = straggler_factor(
            max(1, min(self.concurrency, self._typical_degree())), self.cv
        )
        burst = (
            straggler_factor(self.concurrency, self.cv)
            if quantile >= 1.0
            else quantile_factor(self.concurrency, quantile, self.cv)
        )
        return max(1.0, burst / per_instance)

    def _typical_degree(self) -> int:
        return 1  # exec model covers per-instance stragglers from degree 1

    def service_curve(self, merit: str = "total") -> np.ndarray:
        degs = self.degrees()
        factor = self._burst_factor(merit)
        scaling = np.asarray(
            [
                self.scaling_model.predict(math.ceil(
                    {"total": 1.0, "tail": 0.95, "median": 0.5}[merit]
                    * self.service.n_instances(d)
                ))
                for d in degs
            ]
        )
        exec_term = np.asarray([self.exec_model.predict(d) for d in degs])
        return scaling + exec_term * factor

    def optimal_service(self, merit: str = "total") -> int:
        degs = self.degrees()
        return int(degs[int(np.argmin(self.service_curve(merit)))])

    def regrets(self, merit: str = "total"):
        degs = self.degrees()
        s = self.service_curve(merit)
        e = self.expense.curve(degs)
        return (s - s.min()) / s.min(), (e - e.min()) / e.min()
