"""**Amortization campaigns**: profiling-overhead economics of repeated runs.

The paper includes ProPack's one-time exploration overhead in every
reported number, and notes it "will be much lower due to amortization over
thousands of applications and runs" (Sec. 2.2). :func:`run_campaign`
executes an *amortization campaign* — a sequence of repeated bursts — and
reports the effective expense improvement as a function of run count: the
overhead is paid once, the savings accrue per run.

Naming note: this module models the **economics** of repeating a run.
The *execution* harness for reproducible experiment campaigns (artifact
manifests, sweep DAGs, the ``propack-campaign`` CLI) is
:mod:`repro.harness` — see ``docs/CAMPAIGNS.md`` for how the two relate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.nopack import run_unpacked
from repro.core.propack import ProPack
from repro.platform.base import ServerlessPlatform
from repro.workloads.base import AppSpec


@dataclass
class CampaignReport:
    """Cumulative economics of a repeated-burst amortization campaign.

    (Distinct from :class:`repro.harness.executor.CampaignReport`, which
    reports the execution of a sweep campaign.)
    """

    app_name: str
    concurrency: int
    runs: int
    overhead_usd: float
    per_run_baseline_usd: list[float] = field(default_factory=list)
    per_run_packed_usd: list[float] = field(default_factory=list)

    def cumulative_improvement_pct(self, upto: int) -> float:
        """Expense improvement over the first ``upto`` runs, overhead included."""
        if not 1 <= upto <= self.runs:
            raise ValueError(f"upto must be in [1, {self.runs}]")
        base = sum(self.per_run_baseline_usd[:upto])
        packed = sum(self.per_run_packed_usd[:upto]) + self.overhead_usd
        return 100.0 * (1.0 - packed / base)

    def amortization_curve(self) -> list[tuple[int, float]]:
        return [(n, self.cumulative_improvement_pct(n)) for n in range(1, self.runs + 1)]

    @property
    def overhead_share_final_pct(self) -> float:
        """Overhead as % of total packed spend after the whole campaign."""
        packed = sum(self.per_run_packed_usd) + self.overhead_usd
        return 100.0 * self.overhead_usd / packed


def run_campaign(
    platform: ServerlessPlatform,
    app: AppSpec,
    concurrency: int,
    runs: int,
    objective: str = "joint",
) -> CampaignReport:
    """Execute an amortization campaign: ``runs`` repeated bursts,
    profiling once."""
    if runs < 1:
        raise ValueError("need at least one run")
    propack = ProPack(platform)
    report = CampaignReport(
        app_name=app.name,
        concurrency=concurrency,
        runs=runs,
        overhead_usd=0.0,
    )
    for i in range(runs):
        outcome = propack.run(app, concurrency, objective=objective)
        if i == 0:
            report.overhead_usd = outcome.overhead_usd
        baseline = run_unpacked(platform, app, concurrency)
        report.per_run_baseline_usd.append(baseline.expense.total_usd)
        report.per_run_packed_usd.append(outcome.result.expense.total_usd)
    return report
