"""Discrete-event simulation engine.

This package is the lowest substrate of the reproduction: a deterministic,
seedable discrete-event simulator with the two queueing resources the
serverless platform model is built from:

* :class:`~repro.sim.engine.Simulator` — the event loop (binary-heap agenda).
* :class:`~repro.sim.resources.FifoResource` — a multi-server FIFO queue
  (bounded parallelism; used for container build slots).
* :class:`~repro.sim.resources.ProcessorSharingResource` — an egalitarian
  processor-sharing queue implemented with the classic virtual-time trick
  (O(log n) per event; used for the shipping network uplink).
* :mod:`~repro.sim.randomness` — per-subsystem RNG streams derived from a
  single experiment seed so results are reproducible.
* :mod:`~repro.sim.stats` — metric accumulation (timelines, percentiles).
"""

from repro.sim.engine import Event, Simulator
from repro.sim.randomness import RandomStreams
from repro.sim.resources import FifoResource, ProcessorSharingResource
from repro.sim.stats import SummaryStats, percentile, summarize
from repro.sim.trace import TraceEntry, TraceRecorder

__all__ = [
    "Event",
    "Simulator",
    "RandomStreams",
    "FifoResource",
    "ProcessorSharingResource",
    "SummaryStats",
    "percentile",
    "summarize",
    "TraceEntry",
    "TraceRecorder",
]
