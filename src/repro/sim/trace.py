"""Event tracing for simulation debugging.

A :class:`TraceRecorder` wraps a :class:`~repro.sim.engine.Simulator` and
records every executed event (timestamp, callback name, sequence) into a
bounded ring buffer. Useful when a platform run misbehaves: attach a
recorder, re-run the burst (runs are deterministic), and inspect the event
stream around the anomaly.

    sim = Simulator()
    trace = TraceRecorder(sim, capacity=10_000)
    ... run ...
    for entry in trace.window(120.0, 130.0):
        print(entry)

Executed events travel over a :class:`~repro.telemetry.bus.EventBus` as
``sim.event`` publications — the recorder is one subscriber among any
number, so a telemetry session (or a test) can watch the same stream by
passing a shared bus.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from repro.sim.engine import Simulator
from repro.telemetry.bus import EventBus, TelemetryEvent

#: Event kind published on the bus for every executed simulator event.
SIM_EVENT_KIND = "sim.event"


@dataclass(frozen=True)
class TraceEntry:
    """One executed event."""

    time: float
    seq: int
    callback: str

    def __str__(self) -> str:
        return f"[{self.time:12.6f}] #{self.seq} {self.callback}"


def _callback_name(callback: Callable) -> str:
    qualname = getattr(callback, "__qualname__", None)
    if qualname:
        return qualname
    return repr(callback)


class TraceRecorder:
    """Records executed events from a simulator into a ring buffer.

    Entries flow through ``bus`` (a private one by default): the wrapped
    step publishes a ``sim.event`` per execution and the recorder's ring
    buffer is simply a subscriber, so other listeners on a shared bus see
    the identical stream.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: int = 100_000,
        predicate: Optional[Callable[[TraceEntry], bool]] = None,
        bus: Optional[EventBus] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.predicate = predicate
        self.bus = bus if bus is not None else EventBus()
        self.entries: deque[TraceEntry] = deque(maxlen=capacity)
        self.dropped = 0
        self._installed = False
        self._original_step = None
        self._unsubscribe: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------ #
    def install(self) -> "TraceRecorder":
        """Start recording (wraps the simulator's step method)."""
        if self._installed:
            return self
        self._unsubscribe = self.bus.subscribe(self._on_event, kind=SIM_EVENT_KIND)
        original = self.sim.step
        recorder = self

        def traced_step() -> bool:
            nxt = recorder.sim.peek()
            if nxt is None:
                return original()
            # Capture the head event's identity before it executes.
            time, seq, head = recorder.sim._heap[0]
            callback = _callback_name(head.callback)
            executed = original()
            if executed:
                recorder.bus.publish(
                    SIM_EVENT_KIND, time, seq=seq, callback=callback
                )
            return executed

        self._original_step = original
        self.sim.step = traced_step  # type: ignore[method-assign]
        self._installed = True
        return self

    def uninstall(self) -> None:
        if self._installed and self._original_step is not None:
            self.sim.step = self._original_step  # type: ignore[method-assign]
            self._installed = False
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    def __enter__(self) -> "TraceRecorder":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.uninstall()

    # ------------------------------------------------------------------ #
    def _on_event(self, event: TelemetryEvent) -> None:
        entry = TraceEntry(
            time=event.time,
            seq=int(event.get("seq")),
            callback=str(event.get("callback")),
        )
        self._record(entry)

    def _record(self, entry: TraceEntry) -> None:
        if self.predicate is not None and not self.predicate(entry):
            return
        if len(self.entries) == self.capacity:
            self.dropped += 1
        self.entries.append(entry)

    def window(self, start: float, end: float) -> list[TraceEntry]:
        """Entries executed in the time window [start, end]."""
        return [e for e in self.entries if start <= e.time <= end]

    def by_callback(self, substring: str) -> list[TraceEntry]:
        return [e for e in self.entries if substring in e.callback]

    def __len__(self) -> int:
        return len(self.entries)

    def summary(self) -> dict[str, int]:
        """Event counts per callback name (a quick profile of a run)."""
        counts: dict[str, int] = {}
        for entry in self.entries:
            counts[entry.callback] = counts.get(entry.callback, 0) + 1
        return dict(sorted(counts.items(), key=lambda kv: -kv[1]))
