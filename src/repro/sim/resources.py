"""Queueing resources used by the platform model.

Two disciplines cover every contention point in the serverless substrate:

* :class:`FifoResource` — ``k`` identical servers, FIFO queue. Models the
  image-builder's bounded build parallelism and per-server admission.
* :class:`ProcessorSharingResource` — egalitarian processor sharing of a
  fixed capacity. Models the shipping uplink, where all in-flight container
  transfers share the builder's network bandwidth.

The PS queue uses the classic *virtual time* formulation: with capacity
``R`` shared equally among ``n(t)`` jobs, define ``V(t)`` with
``dV/dt = R / n(t)``. A job arriving at ``t0`` with service demand ``w``
completes when ``V(t) == V(t0) + w``. All jobs advance along the same
``V`` axis, so completions pop from a heap keyed by ``V(t0) + w`` —
O(log n) per event instead of the naive O(n) rescan.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.sim.engine import Event, SimulationError, Simulator

Completion = Callable[..., None]


@dataclass(slots=True)
class _FifoJob:
    work: float
    callback: Completion
    args: tuple
    enqueued_at: float


class FifoResource:
    """``servers`` identical servers, FIFO admission, deterministic order.

    ``work`` is expressed in seconds of service on one server. The completion
    callback receives the caller's ``args``; queueing statistics are exposed
    via :attr:`total_jobs` and :attr:`busy_servers` for tests.
    """

    def __init__(self, sim: Simulator, servers: int, name: str = "fifo") -> None:
        if servers < 1:
            raise SimulationError(f"{name}: need at least one server (got {servers})")
        self.sim = sim
        self.servers = servers
        self.name = name
        self._queue: list[_FifoJob] = []
        self._busy = 0
        self.total_jobs = 0

    @property
    def busy_servers(self) -> int:
        return self._busy

    @property
    def queued_jobs(self) -> int:
        return len(self._queue)

    def submit(self, work: float, callback: Completion, *args: Any) -> None:
        """Enqueue a job needing ``work`` seconds of one server's time."""
        if work < 0:
            raise SimulationError(f"{self.name}: negative work {work}")
        self.total_jobs += 1
        job = _FifoJob(work, callback, args, self.sim.now)
        if self._busy < self.servers:
            self._start(job)
        else:
            self._queue.append(job)

    def _start(self, job: _FifoJob) -> None:
        self._busy += 1
        self.sim.schedule(job.work, self._finish, job)

    def _finish(self, job: _FifoJob) -> None:
        self._busy -= 1
        if self._queue:
            self._start(self._queue.pop(0))
        job.callback(*job.args)


@dataclass(order=True, slots=True)
class _PSJob:
    finish_v: float
    seq: int
    callback: Completion = field(compare=False)
    args: tuple = field(compare=False)
    cancelled: bool = field(compare=False, default=False)


class ProcessorSharingResource:
    """Egalitarian processor sharing of ``capacity`` units/second.

    ``submit(work, cb)`` admits a job demanding ``work`` capacity-seconds;
    all active jobs progress at ``capacity / n`` until one completes or a new
    job arrives. Implemented with virtual time (see module docstring).
    """

    def __init__(self, sim: Simulator, capacity: float, name: str = "ps") -> None:
        if capacity <= 0:
            raise SimulationError(f"{name}: capacity must be positive (got {capacity})")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._jobs: list[_PSJob] = []  # heap keyed by finish virtual time
        self._seq = itertools.count()
        self._vtime = 0.0
        self._vtime_updated_at = 0.0
        self._active = 0
        self._pending_event: Optional[Event] = None
        self.total_jobs = 0

    @property
    def active_jobs(self) -> int:
        return self._active

    def _advance_vtime(self) -> None:
        """Bring virtual time forward to the simulator's current clock."""
        if self._active > 0:
            elapsed = self.sim.now - self._vtime_updated_at
            self._vtime += elapsed * (self.capacity / self._active)
        self._vtime_updated_at = self.sim.now

    def _reschedule(self) -> None:
        """(Re)schedule the next-completion event after any state change."""
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        while self._jobs and self._jobs[0].cancelled:
            heapq.heappop(self._jobs)
        if not self._jobs:
            return
        head = self._jobs[0]
        remaining_v = head.finish_v - self._vtime
        # Numerical guard: remaining_v can dip epsilon-negative from float error.
        remaining_v = max(remaining_v, 0.0)
        delay = remaining_v * self._active / self.capacity
        self._pending_event = self.sim.schedule(delay, self._complete_head)

    def submit(self, work: float, callback: Completion, *args: Any) -> None:
        """Admit a job demanding ``work`` capacity-seconds."""
        if work < 0:
            raise SimulationError(f"{self.name}: negative work {work}")
        self._advance_vtime()
        self.total_jobs += 1
        self._active += 1
        job = _PSJob(self._vtime + work, next(self._seq), callback, args)
        heapq.heappush(self._jobs, job)
        self._reschedule()

    def _complete_head(self) -> None:
        self._advance_vtime()
        self._pending_event = None
        while self._jobs and self._jobs[0].cancelled:
            heapq.heappop(self._jobs)
        if not self._jobs:
            return
        job = heapq.heappop(self._jobs)
        self._active -= 1
        self._reschedule()
        job.callback(*job.args)
