"""Metric helpers: percentiles and summary statistics over run records.

The paper reports three figures of merit over the completion times of a
burst of concurrent instances:

* *total* service time — completion of the **last** instance,
* *tail* service time — completion of the first **95%** of instances,
* *median* service time — completion of the first **50%** of instances,

all measured from the start of the first instance. :func:`percentile`
implements the "first k% complete" reading (an order statistic over
completion times), which differs from interpolated percentiles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


def percentile(values: Sequence[float], fraction: float) -> float:
    """Time by which ``fraction`` of the values have occurred.

    This is the ceil-rank order statistic: ``percentile(times, 0.95)`` is the
    completion time of the ``ceil(0.95 * n)``-th instance, matching the
    paper's "time required till the end of execution of the first 95% of
    concurrent function instances".
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    arr = np.sort(np.asarray(values, dtype=float))
    if arr.size == 0:
        raise ValueError("percentile of empty sequence")
    rank = math.ceil(fraction * arr.size)
    return float(arr[rank - 1])


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-ish summary of a metric series."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    p95: float
    maximum: float


def summarize(values: Iterable[float]) -> SummaryStats:
    """Summarize a metric series (deterministic given the input)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("summarize of empty sequence")
    return SummaryStats(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=0)),
        minimum=float(arr.min()),
        median=percentile(arr, 0.5),
        p95=percentile(arr, 0.95),
        maximum=float(arr.max()),
    )


def relative_spread(values: Sequence[float]) -> float:
    """(max - min) / mean — used to check "<5% variation" style claims."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("relative_spread of empty sequence")
    mean = float(arr.mean())
    if mean == 0.0:
        return 0.0
    return float((arr.max() - arr.min()) / mean)
