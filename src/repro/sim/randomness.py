"""Deterministic per-subsystem random streams.

Every experiment takes one integer seed. Subsystems (scheduler, builder,
network, execution, workload) each draw from an independent stream derived
from that seed and a label, so adding noise draws in one subsystem never
perturbs another — a standard trick for reproducible parallel-systems
simulation.

Batched mode
------------

Scalar ``Generator`` calls dominate the dispatch hot path (~0.65 µs per
``random()`` against ~0.1 µs for a Python list index). ``enable_batching``
wraps every stream in a :class:`BufferedGenerator` that prefetches draws in
blocks of one vectorized call and serves them one at a time — preserving
the *per-stream draw order exactly*, so a batched run is byte-identical to
a scalar run (see ``docs/PERFORMANCE.md`` for the draw-order contract).

The facade relies on numpy ``Generator`` identities that hold because the
vectorized samplers consume the bit stream exactly as their scalar
counterparts do (asserted by ``tests/test_batched_draws.py``):

* ``random(n)`` equals ``n`` successive ``random()`` calls,
* ``uniform(a, b)`` equals ``a + (b - a) * random()``,
* ``normal(loc, s)`` equals ``loc + s * standard_normal()``,
* ``lognormal(m, s)`` equals ``exp(m + s * standard_normal())``,
* ``exponential(s)`` equals ``s * standard_exponential()``.

Distribution switches on one stream (e.g. the straggler stream's rare
uniform→lognormal flip) rewind the underlying generator to its logical
position — saved bit-generator state, replayed consumed draws — before the
next prefetch, so mixed streams stay exact too.
"""

from __future__ import annotations

import math
import zlib
from typing import Optional, Union

import numpy as np

#: Prefetch block size: large enough to amortize the vectorized call,
#: small enough that a distribution switch's rewind-replay stays cheap.
DEFAULT_BATCH_BLOCK = 256

# Buffer kinds (interned; compared with ``is``).
_UNIFORM = "u"   # raw doubles in [0, 1)
_NORMAL = "z"    # standard normal
_EXPON = "e"     # standard exponential


class BufferedGenerator:
    """Draw-order-preserving batched facade over one numpy ``Generator``.

    Scalar draws of the hot distributions (``random``, ``uniform``,
    ``normal``, ``lognormal``, ``exponential``) are served from a
    prefetched block; everything else — array draws, ``integers``,
    ``choice``, ``poisson``, ``bit_generator`` inspection — first
    realigns the underlying generator to the logical stream position
    (:meth:`sync`) and then delegates, so any call sequence produces
    exactly the floats the raw generator would have produced.

    Limitations: the buffered scalar paths assume scalar ``loc`` /
    ``scale`` / ``low`` / ``high`` arguments (every call site in this
    repo). Passing array parameters with ``size=None`` is unsupported.
    """

    __slots__ = ("_gen", "_block", "_buf", "_i", "_n", "_kind", "_anchor")

    def __init__(self, gen: np.random.Generator, block: int = DEFAULT_BATCH_BLOCK) -> None:
        if block < 1:
            raise ValueError("batch block must be >= 1")
        self._gen = gen
        self._block = block
        self._buf: list[float] = []
        self._i = 0
        self._n = 0
        self._kind: Optional[str] = None
        self._anchor: Optional[dict] = None

    # ------------------------------------------------------------------ #
    # Buffer management
    # ------------------------------------------------------------------ #
    def sync(self) -> None:
        """Realign the underlying generator to the logical stream position.

        After a prefetch the raw generator sits at the end of the block;
        the logical position is however many draws were actually served.
        Restoring the pre-prefetch state and replaying the consumed count
        with one vectorized call lands the generator exactly where a pure
        scalar caller would have left it.
        """
        if self._kind is None:
            return
        consumed = self._i
        if consumed < self._n:
            self._gen.bit_generator.state = self._anchor
            if consumed:
                if self._kind is _UNIFORM:
                    self._gen.random(consumed)
                elif self._kind is _NORMAL:
                    self._gen.standard_normal(consumed)
                else:
                    self._gen.standard_exponential(consumed)
        self._buf = []
        self._i = 0
        self._n = 0
        self._kind = None
        self._anchor = None

    def _refill(self, kind: str) -> float:
        self.sync()
        self._anchor = self._gen.bit_generator.state
        if kind is _UNIFORM:
            block = self._gen.random(self._block)
        elif kind is _NORMAL:
            block = self._gen.standard_normal(self._block)
        else:
            block = self._gen.standard_exponential(self._block)
        buf = block.tolist()
        self._buf = buf
        self._n = len(buf)
        self._kind = kind
        self._i = 1
        return buf[0]

    # ------------------------------------------------------------------ #
    # Buffered scalar draws
    # ------------------------------------------------------------------ #
    def random(self, size=None, *args, **kwargs):
        if size is not None or args or kwargs:
            self.sync()
            return self._gen.random(size, *args, **kwargs)
        i = self._i
        if self._kind is _UNIFORM and i < self._n:
            self._i = i + 1
            return self._buf[i]
        return self._refill(_UNIFORM)

    def standard_normal(self, size=None, *args, **kwargs):
        if size is not None or args or kwargs:
            self.sync()
            return self._gen.standard_normal(size, *args, **kwargs)
        i = self._i
        if self._kind is _NORMAL and i < self._n:
            self._i = i + 1
            return self._buf[i]
        return self._refill(_NORMAL)

    def standard_exponential(self, size=None, *args, **kwargs):
        if size is not None or args or kwargs:
            self.sync()
            return self._gen.standard_exponential(size, *args, **kwargs)
        i = self._i
        if self._kind is _EXPON and i < self._n:
            self._i = i + 1
            return self._buf[i]
        return self._refill(_EXPON)

    def uniform(self, low: float = 0.0, high: float = 1.0, size=None):
        if size is not None:
            self.sync()
            return self._gen.uniform(low, high, size)
        # Matches numpy's scalar path: off + range * next_double.
        rng_ = high - low
        return low + rng_ * self.standard_uniform()

    # Alias used by the affine paths; same hot body as ``random()``.
    def standard_uniform(self) -> float:
        i = self._i
        if self._kind is _UNIFORM and i < self._n:
            self._i = i + 1
            return self._buf[i]
        return self._refill(_UNIFORM)

    def normal(self, loc: float = 0.0, scale: float = 1.0, size=None):
        if size is not None:
            self.sync()
            return self._gen.normal(loc, scale, size)
        return loc + scale * self.standard_normal()

    def lognormal(self, mean: float = 0.0, sigma: float = 1.0, size=None):
        if size is not None:
            self.sync()
            return self._gen.lognormal(mean, sigma, size)
        # numpy's scalar lognormal is exp(random_normal(mean, sigma)) with
        # the libm exp — exactly what math.exp wraps.
        return math.exp(mean + sigma * self.standard_normal())

    def exponential(self, scale: float = 1.0, size=None):
        if size is not None:
            self.sync()
            return self._gen.exponential(scale, size)
        return scale * self.standard_exponential()

    # ------------------------------------------------------------------ #
    # Everything else: realign, then behave exactly like the raw generator.
    # ------------------------------------------------------------------ #
    def __getattr__(self, name: str):
        self.sync()
        return getattr(self._gen, name)


#: A stream handle: a raw generator (scalar mode) or its batched facade.
StreamHandle = Union[np.random.Generator, BufferedGenerator]


class RandomStreams:
    """A family of independent ``numpy`` generators derived from one seed."""

    def __init__(self, seed: int, batch_block: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, StreamHandle] = {}
        self._batch_block = int(batch_block)

    @property
    def batched(self) -> bool:
        """Whether streams are served through :class:`BufferedGenerator`."""
        return self._batch_block > 0

    def enable_batching(self, block: int = DEFAULT_BATCH_BLOCK) -> None:
        """Serve all present and future streams through prefetch buffers.

        Safe to call mid-run: existing streams are wrapped in place and the
        facade continues from each generator's current state, so the
        per-stream draw sequence is unbroken.
        """
        if block < 1:
            raise ValueError("batch block must be >= 1")
        self._batch_block = int(block)
        for label, gen in self._streams.items():
            if not isinstance(gen, BufferedGenerator):
                self._streams[label] = BufferedGenerator(gen, block)

    def stream(self, label: str) -> StreamHandle:
        """Return (creating on first use) the generator for ``label``."""
        gen = self._streams.get(label)
        if gen is None:
            # crc32 keeps the derivation stable across processes/platforms
            # (unlike hash(), which is salted per interpreter run).
            child = np.random.SeedSequence([self.seed, zlib.crc32(label.encode())])
            gen = np.random.default_rng(child)
            if self._batch_block:
                gen = BufferedGenerator(gen, self._batch_block)
            self._streams[label] = gen
        return gen

    def lognormal_factor(self, label: str, sigma: float) -> float:
        """A multiplicative noise factor with median 1.0.

        ``sigma`` is the log-space standard deviation; ``sigma == 0`` returns
        exactly 1.0 so noiseless simulations stay bit-deterministic.
        """
        if sigma <= 0.0:
            return 1.0
        return float(np.exp(self.stream(label).normal(0.0, sigma)))

    def pareto_factors(
        self, label: str, alpha: float, size: int, cap: float = 1e6
    ) -> np.ndarray:
        """Bounded-Pareto multiplicative factors with unit minimum.

        Inverse-CDF draws of a Pareto(``alpha``) variable truncated at
        ``cap`` — the standard model for the heavy-tailed per-function
        invocation rates observed in production serverless traces.
        """
        if alpha <= 0.0:
            raise ValueError("alpha must be positive")
        if size < 1:
            raise ValueError("size must be >= 1")
        u = self.stream(label).random(size)
        return np.minimum((1.0 - u) ** (-1.0 / alpha), cap)

    def spawn(self, label: str) -> "RandomStreams":
        """Derive an independent child family (e.g. per repetition)."""
        return RandomStreams(
            zlib.crc32(label.encode()) ^ self.seed, batch_block=self._batch_block
        )
