"""Deterministic per-subsystem random streams.

Every experiment takes one integer seed. Subsystems (scheduler, builder,
network, execution, workload) each draw from an independent stream derived
from that seed and a label, so adding noise draws in one subsystem never
perturbs another — a standard trick for reproducible parallel-systems
simulation.
"""

from __future__ import annotations

import zlib

import numpy as np


class RandomStreams:
    """A family of independent ``numpy`` generators derived from one seed."""

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, label: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``label``."""
        gen = self._streams.get(label)
        if gen is None:
            # crc32 keeps the derivation stable across processes/platforms
            # (unlike hash(), which is salted per interpreter run).
            child = np.random.SeedSequence([self.seed, zlib.crc32(label.encode())])
            gen = np.random.default_rng(child)
            self._streams[label] = gen
        return gen

    def lognormal_factor(self, label: str, sigma: float) -> float:
        """A multiplicative noise factor with median 1.0.

        ``sigma`` is the log-space standard deviation; ``sigma == 0`` returns
        exactly 1.0 so noiseless simulations stay bit-deterministic.
        """
        if sigma <= 0.0:
            return 1.0
        return float(np.exp(self.stream(label).normal(0.0, sigma)))

    def pareto_factors(
        self, label: str, alpha: float, size: int, cap: float = 1e6
    ) -> np.ndarray:
        """Bounded-Pareto multiplicative factors with unit minimum.

        Inverse-CDF draws of a Pareto(``alpha``) variable truncated at
        ``cap`` — the standard model for the heavy-tailed per-function
        invocation rates observed in production serverless traces.
        """
        if alpha <= 0.0:
            raise ValueError("alpha must be positive")
        if size < 1:
            raise ValueError("size must be >= 1")
        u = self.stream(label).random(size)
        return np.minimum((1.0 - u) ** (-1.0 / alpha), cap)

    def spawn(self, label: str) -> "RandomStreams":
        """Derive an independent child family (e.g. per repetition)."""
        return RandomStreams(zlib.crc32(label.encode()) ^ self.seed)
