"""Event-loop core of the discrete-event simulator.

The engine is deliberately minimal: a binary heap of timestamped events, each
carrying a callback. Components (scheduler, builder, network, instances)
schedule callbacks against a shared :class:`Simulator`. Ties are broken by a
monotonically increasing sequence number so execution order is deterministic
for a given seed, which the experiment harness relies on.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised when the simulation is driven into an invalid state."""


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` so the heap pops them in timestamp
    order with FIFO tie-breaking. ``cancelled`` implements lazy deletion:
    cancelled events stay in the heap but are skipped when popped (the
    owning simulator is notified so it can bound the garbage — see
    :meth:`Simulator._compact`).
    """

    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    _on_cancel: Optional[Callable[[], None]] = field(
        compare=False, default=None, repr=False
    )

    def cancel(self) -> None:
        """Mark the event so the loop skips it (lazy deletion)."""
        if not self.cancelled:
            self.cancelled = True
            if self._on_cancel is not None:
                self._on_cancel()


class Simulator:
    """A deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> hits = []
    >>> _ = sim.schedule(2.0, hits.append, 'b')
    >>> _ = sim.schedule(1.0, hits.append, 'a')
    >>> sim.run()
    >>> hits
    ['a', 'b']
    >>> sim.now
    2.0
    """

    #: Agendas smaller than this are never compacted (rebuild overhead
    #: would dominate; a few dozen dead entries are harmless).
    COMPACT_MIN_EVENTS = 64

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0
        self._cancelled_live = 0  # cancelled events still sitting in the heap
        self._cancel_hook = self._note_cancelled  # one bound method, shared

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for instrumentation/tests)."""
        return self._events_processed

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        event = Event(
            self._now + delay, next(self._seq), callback, args,
            _on_cancel=self._cancel_hook,
        )
        heapq.heappush(self._heap, event)
        return event

    # ------------------------------------------------------------------ #
    # Lazy-deletion bookkeeping: hedging and twin-cancellation can leave
    # more dead events than live ones on long agendas, so the heap is
    # rebuilt once garbage exceeds half the agenda. Compaction preserves
    # (time, seq) pop order exactly and never touches ``events_processed``
    # (which counts executed events only).
    def _note_cancelled(self) -> None:
        self._cancelled_live += 1
        if (
            len(self._heap) >= self.COMPACT_MIN_EVENTS
            and self._cancelled_live > len(self._heap) // 2
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled events and re-heapify (bounds agenda growth)."""
        self._heap = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)
        self._cancelled_live = 0

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        return self.schedule(time - self._now, callback, *args)

    def peek(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` if the agenda is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._cancelled_live -= 1
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Execute the next event. Returns ``False`` when the agenda is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._cancelled_live -= 1
                continue
            if event.time < self._now:
                raise SimulationError("event heap produced a time in the past")
            self._now = event.time
            self._events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the agenda drains, ``until`` is reached, or ``max_events``.

        ``until`` leaves the clock at exactly ``until`` if the agenda outlives
        it; events at precisely ``until`` are executed.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        executed = 0
        try:
            while True:
                nxt = self.peek()
                if nxt is None:
                    break
                if until is not None and nxt > until:
                    self._now = until
                    break
                if max_events is not None and executed >= max_events:
                    break
                self.step()
                executed += 1
        finally:
            self._running = False
