"""Event-loop core of the discrete-event simulator.

The engine is deliberately minimal: a binary heap of timestamped events, each
carrying a callback. Components (scheduler, builder, network, instances)
schedule callbacks against a shared :class:`Simulator`. Ties are broken by a
monotonically increasing sequence number so execution order is deterministic
for a given seed, which the experiment harness relies on.

The heap stores ``(time, seq, event)`` tuples rather than the events
themselves: ``seq`` is unique, so tuple comparison never reaches the event
object and every heap operation compares plain floats/ints in C. At a
million-event agenda that removes the single hottest Python frame of the
dispatch profile (the dataclass-generated ``Event.__lt__``).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

#: One heap entry: (time, seq, event).
_HeapEntry = "tuple[float, int, Event]"


class SimulationError(RuntimeError):
    """Raised when the simulation is driven into an invalid state."""


class Event:
    """A scheduled callback.

    Events order by ``(time, seq)`` so the heap pops them in timestamp
    order with FIFO tie-breaking (the ordering itself lives in the heap's
    tuple keys; the comparison operators here exist for tests and direct
    users). ``cancelled`` implements lazy deletion: cancelled events stay
    in the heap but are skipped when popped (the owning simulator is
    notified so it can bound the garbage — see :meth:`Simulator._compact`).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_on_cancel")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple = (),
        cancelled: bool = False,
        _on_cancel: Optional[Callable[[], None]] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = cancelled
        self._on_cancel = _on_cancel

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (self.time, self.seq) == (other.time, other.seq)

    def __repr__(self) -> str:
        return (
            f"Event(time={self.time!r}, seq={self.seq!r}, "
            f"cancelled={self.cancelled!r})"
        )

    def cancel(self) -> None:
        """Mark the event so the loop skips it (lazy deletion)."""
        if not self.cancelled:
            self.cancelled = True
            if self._on_cancel is not None:
                self._on_cancel()


class Simulator:
    """A deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> hits = []
    >>> _ = sim.schedule(2.0, hits.append, 'b')
    >>> _ = sim.schedule(1.0, hits.append, 'a')
    >>> sim.run()
    >>> hits
    ['a', 'b']
    >>> sim.now
    2.0
    """

    #: Agendas smaller than this are never compacted (rebuild overhead
    #: would dominate; a few hundred dead entries are harmless). Measured
    #: on cancel-heavy agendas (90% cancelled): a floor of 64 wins by
    #: ~10% below ~8k events, 1024 wins by ~6% at 1e5–1e6 (it skips the
    #: geometric tail of tiny drain-time rebuilds), and disabling
    #: compaction is ~60% slower at 1e6. The garbage-ratio trigger itself
    #: (rebuild once dead > live) is scale-free and beat both 1/4 and 2/3
    #: at every size — see the compaction micro-benchmark in
    #: benchmarks/test_perf_primitives.py and docs/PERFORMANCE.md.
    COMPACT_MIN_EVENTS = 1024

    def __init__(self, compact_min_events: Optional[int] = None) -> None:
        self._now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0
        self._cancelled_live = 0  # cancelled events still sitting in the heap
        self.compactions = 0      # heap rebuilds performed (observability)
        self._cancel_hook = self._note_cancelled  # one bound method, shared
        self._compact_min = (
            self.COMPACT_MIN_EVENTS if compact_min_events is None else compact_min_events
        )

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for instrumentation/tests)."""
        return self._events_processed

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        time = self._now + delay
        seq = next(self._seq)
        event = Event(time, seq, callback, args, _on_cancel=self._cancel_hook)
        heapq.heappush(self._heap, (time, seq, event))
        return event

    # ------------------------------------------------------------------ #
    # Lazy-deletion bookkeeping: hedging and twin-cancellation can leave
    # more dead events than live ones on long agendas, so the heap is
    # rebuilt once garbage exceeds half the agenda. Compaction preserves
    # (time, seq) pop order exactly and never touches ``events_processed``
    # (which counts executed events only).
    def _note_cancelled(self) -> None:
        self._cancelled_live += 1
        if (
            len(self._heap) >= self._compact_min
            and self._cancelled_live > len(self._heap) // 2
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled events and re-heapify (bounds agenda growth)."""
        self._heap = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled_live = 0
        self.compactions += 1

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        return self.schedule(time - self._now, callback, *args)

    def peek(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` if the agenda is empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._cancelled_live -= 1
        return heap[0][0] if heap else None

    def step(self) -> bool:
        """Execute the next event. Returns ``False`` when the agenda is empty."""
        heap = self._heap
        while heap:
            time, _seq, event = heapq.heappop(heap)
            if event.cancelled:
                self._cancelled_live -= 1
                continue
            if time < self._now:
                raise SimulationError("event heap produced a time in the past")
            self._now = time
            self._events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the agenda drains, ``until`` is reached, or ``max_events``.

        ``until`` leaves the clock at exactly ``until`` if the agenda outlives
        it; events at precisely ``until`` are executed.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        executed = 0
        try:
            while True:
                nxt = self.peek()
                if nxt is None:
                    break
                if until is not None and nxt > until:
                    self._now = until
                    break
                if max_events is not None and executed >= max_events:
                    break
                self.step()
                executed += 1
        finally:
            self._running = False
