"""Per-fault-domain circuit breakers around instance dispatch.

A crash-looping fault domain (rack, AZ, poisoned runtime image) turns every
dispatch routed at it into billed-but-wasted work: the attempt is charged
up to the crash point, then retried, losing ``P×`` work per packed
instance. The circuit breaker is the classic cure — after
``failure_threshold`` consecutive failures the domain is *open* and
receives no traffic; after a seeded recovery pause it goes *half-open* and
admits a bounded number of probe dispatches; a probe success closes the
breaker, a probe failure re-opens it with exponential backoff. A
persistently poisoned domain therefore quarantines itself: its probes keep
failing and the recovery pause escalates toward ``max_recovery_s``.

Determinism: the recovery pause is jittered from a dedicated numpy
generator (to de-synchronize probes across domains), so one seed fixes
every transition time; :meth:`CircuitBreaker.transitions` records them all
for the regression goldens.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

if TYPE_CHECKING:  # annotation-only import
    from repro.telemetry.metrics import MetricsRegistry

CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"


class CircuitBreaker:
    """One domain's closed / open / half-open state machine."""

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_s: float = 30.0,
        half_open_probes: int = 1,
        backoff_factor: float = 2.0,
        max_recovery_s: float = 600.0,
        jitter: float = 0.2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if recovery_s <= 0.0 or max_recovery_s < recovery_s:
            raise ValueError("need 0 < recovery_s <= max_recovery_s")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        if backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")
        if jitter < 0.0:
            raise ValueError("jitter must be non-negative")
        self.failure_threshold = int(failure_threshold)
        self.recovery_s = float(recovery_s)
        self.half_open_probes = int(half_open_probes)
        self.backoff_factor = float(backoff_factor)
        self.max_recovery_s = float(max_recovery_s)
        self.jitter = float(jitter)
        self._rng = rng
        self.state = CLOSED
        self._consecutive_failures = 0
        self._open_until = 0.0
        self._current_recovery_s = self.recovery_s
        self._probes_outstanding = 0
        self.transitions: list[tuple[float, str, str]] = []
        #: Failed probes (half-open → open re-openings). A flapping breaker
        #: keeps admitting probes into a still-broken domain — the signal
        #: remediation detectors watch for.
        self.flaps = 0
        #: Optional observer called with ``(now, from_state, to_state)``.
        self.on_transition: Optional[Callable[[float, str, str], None]] = None

    # ------------------------------------------------------------------ #
    def _transition(self, now: float, to: str) -> None:
        self.transitions.append((now, self.state, to))
        if to == OPEN and self.state == HALF_OPEN:
            self.flaps += 1
        if self.on_transition is not None:
            self.on_transition(now, self.state, to)
        self.state = to

    def _pause(self) -> float:
        """The next open pause, jittered from the seeded generator."""
        pause = self._current_recovery_s
        if self.jitter > 0.0 and self._rng is not None:
            pause *= 1.0 + self.jitter * float(self._rng.random())
        return pause

    def _open(self, now: float) -> None:
        self._transition(now, OPEN)
        self._open_until = now + self._pause()
        self._current_recovery_s = min(
            self.max_recovery_s, self._current_recovery_s * self.backoff_factor
        )
        self._probes_outstanding = 0

    # ------------------------------------------------------------------ #
    def allow(self, now: float) -> bool:
        """May a dispatch be routed at this domain right now?

        Half-open admissions count as probes (the call mutates the probe
        budget); while open — strictly before the recovery deadline — the
        answer is always ``False``, the invariant the property suite pins.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now < self._open_until:
                return False
            self._transition(now, HALF_OPEN)
        if self._probes_outstanding < self.half_open_probes:
            self._probes_outstanding += 1
            return True
        return False

    def record_success(self, now: float) -> None:
        self._consecutive_failures = 0
        if self.state == HALF_OPEN:
            self._transition(now, CLOSED)
            self._current_recovery_s = self.recovery_s
            self._probes_outstanding = 0

    def record_failure(self, now: float) -> None:
        if self.state == HALF_OPEN:
            self._open(now)
            return
        self._consecutive_failures += 1
        if self.state == CLOSED and (
            self._consecutive_failures >= self.failure_threshold
        ):
            self._open(now)

    # ------------------------------------------------------------------ #
    @property
    def open_until(self) -> float:
        """Recovery deadline of the current open period (0 when never opened)."""
        return self._open_until

    @property
    def n_transitions(self) -> int:
        return len(self.transitions)


class CircuitBreakerBank:
    """One breaker per fault domain, with deterministic rotor routing.

    ``pick`` scans domains round-robin from a rotor (so healthy domains
    share load instead of the first one absorbing everything) and returns
    the first domain whose breaker admits the dispatch, or ``None`` when
    every domain refuses. ``earliest_retry`` then tells the caller when an
    open breaker will next consider a probe — the serving loop parks
    blocked batches until that time or until an in-flight completion frees
    a half-open probe slot.
    """

    def __init__(
        self,
        n_domains: int = 4,
        rng: Optional[np.random.Generator] = None,
        **breaker_kwargs,
    ) -> None:
        if n_domains < 1:
            raise ValueError("need at least one fault domain")
        self.breakers = [
            CircuitBreaker(rng=rng, **breaker_kwargs) for _ in range(n_domains)
        ]
        self.poisoned: set[int] = set()
        self.quarantined: set[int] = set()
        self._rotor = 0
        self._quarantined_gauge = None

    def bind_metrics(self, registry: "MetricsRegistry") -> None:
        """Mirror state transitions into a telemetry metrics registry."""
        transitions = registry.counter(
            "propack_breaker_transitions_total",
            help="Circuit-breaker state transitions across fault domains.",
        )
        open_gauge = registry.gauge(
            "propack_breaker_open_domains",
            help="Fault domains currently in the open state.",
        )
        state_changes = {
            state: registry.counter(
                "propack_breaker_state_changes_total",
                help="Circuit-breaker transitions by destination state.",
                to=state,
            )
            for state in (CLOSED, OPEN, HALF_OPEN)
        }
        flaps = registry.counter(
            "propack_breaker_flaps_total",
            help="Failed half-open probes (half-open → open re-openings).",
        )
        self._quarantined_gauge = registry.gauge(
            "propack_breaker_quarantined_domains",
            help="Fault domains administratively quarantined.",
        )
        self._quarantined_gauge.set(len(self.quarantined))

        def observe(now: float, src: str, dst: str) -> None:
            transitions.inc()
            state_changes[dst].inc()
            if src == HALF_OPEN and dst == OPEN:
                flaps.inc()
            delta = (1 if dst == OPEN else 0) - (1 if src == OPEN else 0)
            if delta:
                open_gauge.inc(delta)

        for breaker in self.breakers:
            breaker.on_transition = observe

    def __len__(self) -> int:
        return len(self.breakers)

    def pick(self, now: float) -> Optional[int]:
        n = len(self.breakers)
        for step in range(n):
            domain = (self._rotor + step) % n
            if domain in self.quarantined:
                continue
            if self.breakers[domain].allow(now):
                self._rotor = (domain + 1) % n
                return domain
        return None

    def earliest_retry(self, now: float) -> Optional[float]:
        """Earliest future instant an open breaker reaches half-open."""
        deadlines = [
            b.open_until for d, b in enumerate(self.breakers)
            if d not in self.quarantined and b.state == OPEN and b.open_until > now
        ]
        return min(deadlines) if deadlines else None

    def record(self, domain: int, success: bool, now: float) -> None:
        if success:
            self.breakers[domain].record_success(now)
        else:
            self.breakers[domain].record_failure(now)

    def poison(self, domain: int) -> None:
        """Mark a domain persistently faulty (every dispatch there crashes)."""
        self.poisoned.add(domain)

    def is_poisoned(self, domain: int) -> bool:
        return domain in self.poisoned

    # ------------------------------------------------------------------ #
    # Administrative quarantine (remediation actuation seam)
    # ------------------------------------------------------------------ #
    def quarantine(self, domain: int) -> None:
        """Administratively remove ``domain`` from routing.

        Unlike an open breaker — which probes its way back — a quarantined
        domain receives no traffic at all until :meth:`release`. At least
        one domain must remain routable.
        """
        if not 0 <= domain < len(self.breakers):
            raise ValueError(f"no such fault domain: {domain}")
        if len(self.quarantined | {domain}) >= len(self.breakers):
            raise ValueError("cannot quarantine the last routable domain")
        self.quarantined.add(domain)
        if self._quarantined_gauge is not None:
            self._quarantined_gauge.set(len(self.quarantined))

    def release(self, domain: int) -> None:
        """Return a quarantined domain to routing (breaker state untouched)."""
        self.quarantined.discard(domain)
        if self._quarantined_gauge is not None:
            self._quarantined_gauge.set(len(self.quarantined))

    @property
    def n_transitions(self) -> int:
        return sum(b.n_transitions for b in self.breakers)

    @property
    def n_flaps(self) -> int:
        """Total failed half-open probes across domains."""
        return sum(b.flaps for b in self.breakers)

    def flaps_by_domain(self) -> list[int]:
        return [b.flaps for b in self.breakers]

    @property
    def n_open(self) -> int:
        return sum(1 for b in self.breakers if b.state == OPEN)

    def transition_log(self) -> list[tuple[float, int, str, str]]:
        """All transitions across domains, sorted by time (for goldens)."""
        log = [
            (t, d, src, dst)
            for d, b in enumerate(self.breakers)
            for (t, src, dst) in b.transitions
        ]
        return sorted(log)
