"""Admission control: refuse work before overload refuses it for you.

The serving loop (PR 2) has an unbounded dispatch queue: under a flash
crowd every request is eventually served, each slower than the last, until
the whole window blows its SLO. Real platforms survive overload by
*shedding* — rejecting requests at the door so the ones admitted still
meet their bound ("Practical Scheduling for Real-World Serverless
Computing" makes the same observation for scheduler queues).

Controllers here decide admit-vs-shed per arrival, given the instantaneous
queue depth and in-flight dispatch count:

* :class:`UnboundedAdmission` — the PR 2 behaviour (admit everything), the
  unprotected baseline every overload experiment compares against.
* :class:`ConcurrencyLimitAdmission` — a fixed cap on admitted-but-
  unfinished requests, with per-priority watermarks so low-priority
  traffic sheds first.
* :class:`TokenBucketAdmission` — rate-based: a continuous-refill token
  bucket (the same arithmetic providers use for 429s) with reserve
  headroom that only high-priority requests may dip into.
* :class:`AIMDAdmission` — adaptive: a concurrency limit that grows
  additively while the windowed SLO holds and shrinks multiplicatively on
  breach, TCP-style, so the limit converges to what the platform can
  actually sustain.

Every controller records exact accounting — ``admitted + shed ==
arrivals`` bit-for-bit, per priority class — via :class:`AdmissionStats`;
the property suite asserts the identity for every policy and seed.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.faults.throttle import TokenBucket

if TYPE_CHECKING:  # annotation-only import
    from repro.telemetry.metrics import MetricsRegistry

#: Priority classes, ordered from most to least important. Shedding always
#: prefers the higher index (lower priority).
HIGH, NORMAL, LOW = 0, 1, 2
N_PRIORITIES = 3
PRIORITY_NAMES = ("high", "normal", "low")


@dataclass(frozen=True)
class PriorityMix:
    """Seeded priority assignment: fractions of high/normal/low traffic."""

    high: float = 0.2
    normal: float = 0.6
    low: float = 0.2

    def __post_init__(self) -> None:
        for share in (self.high, self.normal, self.low):
            if share < 0.0:
                raise ValueError("priority shares must be non-negative")
        if not math.isclose(self.high + self.normal + self.low, 1.0, abs_tol=1e-9):
            raise ValueError("priority shares must sum to 1")

    def draw(self, gen: np.random.Generator) -> int:
        """One priority class from one uniform draw (deterministic per seed)."""
        u = gen.random()
        if u < self.high:
            return HIGH
        if u < self.high + self.normal:
            return NORMAL
        return LOW


@dataclass
class AdmissionStats:
    """Exact admit/shed accounting for one serving run."""

    arrivals: int = 0
    admitted: int = 0
    shed_by_priority: list[int] = field(
        default_factory=lambda: [0] * N_PRIORITIES
    )

    @property
    def shed(self) -> int:
        return sum(self.shed_by_priority)

    def record(self, priority: int, admitted: bool) -> None:
        self.arrivals += 1
        if admitted:
            self.admitted += 1
        else:
            self.shed_by_priority[priority] += 1

    def conserved(self) -> bool:
        """The identity every controller must maintain."""
        return self.arrivals == self.admitted + self.shed

    def signature(self) -> tuple:
        return (self.arrivals, self.admitted, tuple(self.shed_by_priority))


class AdmissionController(abc.ABC):
    """Admit-or-shed decisions with mandatory exact accounting."""

    name = "admission"

    def __init__(self) -> None:
        self.stats = AdmissionStats()
        self._metrics: Optional["MetricsRegistry"] = None

    def bind_metrics(self, registry: "MetricsRegistry") -> None:
        """Mirror every decision into a telemetry metrics registry."""
        self._metrics = registry

    @abc.abstractmethod
    def admit(
        self, now: float, priority: int, queue_depth: int, in_flight: int
    ) -> bool:
        """Would a request of ``priority`` be admitted right now?"""

    def decide(
        self, now: float, priority: int, queue_depth: int, in_flight: int
    ) -> bool:
        """:meth:`admit` plus the accounting entry (the serving loop's API)."""
        verdict = self.admit(now, priority, queue_depth, in_flight)
        self.stats.record(priority, verdict)
        if self._metrics is not None:
            self._metrics.counter(
                "propack_admission_decisions_total",
                help="Admit/shed verdicts by priority class.",
                verdict="admitted" if verdict else "shed",
                priority=PRIORITY_NAMES[priority],
            ).inc()
        return verdict

    def observe_window(self, now: float, violation_fraction: float) -> None:
        """Feedback hook: the last window's SLO violation fraction."""

    @property
    def concurrency_limit(self) -> float:
        """Current cap on admitted-but-unfinished requests (inf = none)."""
        return math.inf

    #: Whether :meth:`set_limit` is available (remediation actuation seam).
    supports_limit_override = False

    def set_limit(self, limit: int) -> None:
        """Override the live concurrency limit (controllers that cap)."""
        raise NotImplementedError(f"{self.name} has no concurrency limit")


class UnboundedAdmission(AdmissionController):
    """Admit everything — the PR 2 behaviour, kept as the baseline."""

    name = "unbounded"

    def admit(
        self, now: float, priority: int, queue_depth: int, in_flight: int
    ) -> bool:
        return True


def _validate_watermarks(watermarks: tuple[float, ...]) -> tuple[float, ...]:
    if len(watermarks) != N_PRIORITIES:
        raise ValueError(f"need {N_PRIORITIES} priority watermarks")
    if any(not 0.0 < w <= 1.0 for w in watermarks):
        raise ValueError("watermarks must be in (0, 1]")
    if any(watermarks[i] < watermarks[i + 1] for i in range(N_PRIORITIES - 1)):
        raise ValueError("watermarks must not increase with lower priority")
    return tuple(float(w) for w in watermarks)


class ConcurrencyLimitAdmission(AdmissionController):
    """A fixed cap on admitted-but-unfinished requests.

    ``queue_depth + in_flight`` counts everything admitted and not yet
    completed; a request is admitted while that load sits below
    ``limit × watermark(priority)``. Watermarks are non-increasing with
    priority, so as load climbs the classes shed in strict low-to-high
    order — the load-shedding discipline the brownout controller relies on.
    """

    def __init__(
        self,
        limit: int,
        priority_watermarks: tuple[float, ...] = (1.0, 0.9, 0.7),
    ) -> None:
        super().__init__()
        if limit < 1:
            raise ValueError("limit must be >= 1")
        self.limit = int(limit)
        self.priority_watermarks = _validate_watermarks(priority_watermarks)
        self.name = f"limit-{limit}"

    @property
    def concurrency_limit(self) -> float:
        return float(self.limit)

    supports_limit_override = True

    def set_limit(self, limit: int) -> None:
        if limit < 1:
            raise ValueError("limit must be >= 1")
        self.limit = int(limit)

    def admit(
        self, now: float, priority: int, queue_depth: int, in_flight: int
    ) -> bool:
        load = queue_depth + in_flight
        return load < self.limit * self.priority_watermarks[priority]


class TokenBucketAdmission(AdmissionController):
    """Rate-based admission: one token per request, reserves for priority.

    The bucket refills continuously at ``refill_per_s`` up to ``capacity``.
    A request needs one token, *plus* headroom: class ``p`` is admitted
    only while ``reserve_fractions[p] × capacity`` tokens would remain —
    so when the bucket runs low, low-priority traffic sheds first and the
    reserve is left for high-priority requests.
    """

    def __init__(
        self,
        capacity: int,
        refill_per_s: float,
        reserve_fractions: tuple[float, ...] = (0.0, 0.1, 0.25),
    ) -> None:
        super().__init__()
        if len(reserve_fractions) != N_PRIORITIES:
            raise ValueError(f"need {N_PRIORITIES} reserve fractions")
        if any(not 0.0 <= r < 1.0 for r in reserve_fractions):
            raise ValueError("reserve fractions must be in [0, 1)")
        if any(
            reserve_fractions[i] > reserve_fractions[i + 1]
            for i in range(N_PRIORITIES - 1)
        ):
            raise ValueError("reserves must not decrease with lower priority")
        self.bucket = TokenBucket(capacity, refill_per_s)
        self.reserve_fractions = tuple(float(r) for r in reserve_fractions)
        self.name = f"token-bucket-{capacity}@{refill_per_s:g}/s"

    def admit(
        self, now: float, priority: int, queue_depth: int, in_flight: int
    ) -> bool:
        reserve = self.reserve_fractions[priority] * self.bucket.capacity
        if self.bucket.available(now) < 1.0 + reserve:
            return False
        return self.bucket.try_acquire(now)


class AIMDAdmission(AdmissionController):
    """Additive-increase / multiplicative-decrease concurrency limit.

    The live limit starts at ``initial_limit``; every SLO window observed
    healthy (violation fraction ≤ ``breach_threshold``) grows it by
    ``additive_step``, every breached window shrinks it by
    ``decrease_factor``. TCP's congestion-avoidance argument carries over:
    the limit oscillates just below the largest load the platform can
    serve within SLO, without knowing that capacity in advance.
    """

    def __init__(
        self,
        initial_limit: int = 64,
        min_limit: int = 4,
        max_limit: int = 4096,
        additive_step: float = 4.0,
        decrease_factor: float = 0.5,
        breach_threshold: float = 0.02,
        priority_watermarks: tuple[float, ...] = (1.0, 0.9, 0.7),
    ) -> None:
        super().__init__()
        if not 1 <= min_limit <= initial_limit <= max_limit:
            raise ValueError("need 1 <= min_limit <= initial_limit <= max_limit")
        if additive_step <= 0.0:
            raise ValueError("additive_step must be positive")
        if not 0.0 < decrease_factor < 1.0:
            raise ValueError("decrease_factor must be in (0, 1)")
        if not 0.0 <= breach_threshold < 1.0:
            raise ValueError("breach_threshold must be in [0, 1)")
        self.limit = float(initial_limit)
        self.min_limit = float(min_limit)
        self.max_limit = float(max_limit)
        self.additive_step = float(additive_step)
        self.decrease_factor = float(decrease_factor)
        self.breach_threshold = float(breach_threshold)
        self.priority_watermarks = _validate_watermarks(priority_watermarks)
        self.increases = 0
        self.decreases = 0
        self.name = f"aimd-{initial_limit}"

    @property
    def concurrency_limit(self) -> float:
        return math.floor(self.limit)

    supports_limit_override = True

    def set_limit(self, limit: int) -> None:
        """Re-anchor the AIMD limit (clamped to the configured band)."""
        if limit < 1:
            raise ValueError("limit must be >= 1")
        self.limit = min(self.max_limit, max(self.min_limit, float(limit)))

    def observe_window(self, now: float, violation_fraction: float) -> None:
        if violation_fraction > self.breach_threshold:
            self.limit = max(self.min_limit, self.limit * self.decrease_factor)
            self.decreases += 1
        else:
            self.limit = min(self.max_limit, self.limit + self.additive_step)
            self.increases += 1

    def admit(
        self, now: float, priority: int, queue_depth: int, in_flight: int
    ) -> bool:
        load = queue_depth + in_flight
        return load < math.floor(self.limit) * self.priority_watermarks[priority]
