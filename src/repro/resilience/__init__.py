"""Overload resilience: admission control, circuit breakers, brownout.

This package is the protection layer the long-horizon serving loop
(:mod:`repro.serving`) runs behind: admission controllers shed excess
arrivals with exact per-priority accounting, per-fault-domain circuit
breakers quarantine crash-looping dispatch targets, and a brownout
controller degrades gracefully (deeper packing first, then low-priority
shedding) when the windowed SLO breaches. See ``docs/RESILIENCE.md``.
"""

from dataclasses import dataclass, field
from typing import Optional

from repro.resilience.admission import (
    HIGH,
    LOW,
    N_PRIORITIES,
    NORMAL,
    PRIORITY_NAMES,
    AdmissionController,
    AdmissionStats,
    AIMDAdmission,
    ConcurrencyLimitAdmission,
    PriorityMix,
    TokenBucketAdmission,
    UnboundedAdmission,
)
from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    CircuitBreakerBank,
)
from repro.resilience.brownout import LEVEL_NAMES, BrownoutController


@dataclass
class ResiliencePolicy:
    """The protection bundle one serving run executes.

    Every component is optional; an empty bundle reproduces the
    unprotected PR 2 serving loop bit-for-bit. ``priority_mix`` assigns
    each arrival a seeded priority class that admission, brownout
    shedding, and the shed accounting all agree on.
    """

    admission: Optional[AdmissionController] = None
    breakers: Optional[CircuitBreakerBank] = None
    brownout: Optional[BrownoutController] = None
    priority_mix: PriorityMix = field(default_factory=PriorityMix)

    @property
    def active(self) -> bool:
        return (
            self.admission is not None
            or self.breakers is not None
            or self.brownout is not None
        )


__all__ = [
    "HIGH",
    "NORMAL",
    "LOW",
    "N_PRIORITIES",
    "PRIORITY_NAMES",
    "AdmissionController",
    "AdmissionStats",
    "AIMDAdmission",
    "ConcurrencyLimitAdmission",
    "PriorityMix",
    "TokenBucketAdmission",
    "UnboundedAdmission",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "CircuitBreaker",
    "CircuitBreakerBank",
    "LEVEL_NAMES",
    "BrownoutController",
    "ResiliencePolicy",
]
