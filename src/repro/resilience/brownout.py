"""Brownout: degrade service quality gracefully instead of missing SLOs.

When admission control alone cannot hold the SLO (the admitted load is
within the concurrency limit but the platform is slow — cold-start storms,
fault retries, a throttled control plane), a brownout controller trades
*quality* for *survival* in ordered steps:

* **level 1 — boost packing**: multiply the live packing degree, so the
  same traffic needs fewer instances. Deeper packing raises per-request
  execution time but slashes dispatch count, cold starts, and scaling
  cost — exactly the lever ProPack's model says is cheap to pull when the
  backlog, not the execution time, dominates the sojourn.
* **level 2 — shed low priority**: stop admitting the lowest priority
  class entirely, reserving capacity for traffic that matters.

Escalation is immediate (one breached observation per level); recovery is
hysteretic — the controller steps *down* one level only after
``recover_ticks`` consecutive healthy observations, so an SLO flapping
around its threshold cannot flap the degradation with it. The controller
*composes* with the :class:`~repro.serving.controller.OnlineReplanner`
rather than fighting it: the replanner keeps choosing the base policy for
the observed rate, and the brownout multiplier is applied on top of
whatever policy is live.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.resilience.admission import LOW

if TYPE_CHECKING:  # annotation-only import
    from repro.telemetry.metrics import MetricsRegistry

#: Human-readable level names, index == level.
LEVEL_NAMES = ("normal", "boost-packing", "shed-low")


class BrownoutController:
    """Stepwise degradation driven by windowed SLO health and backlog."""

    def __init__(
        self,
        violation_threshold: float = 0.02,
        backlog_threshold: Optional[int] = None,
        degree_boost: float = 2.0,
        recover_ticks: int = 3,
        max_level: int = 2,
    ) -> None:
        if not 0.0 <= violation_threshold < 1.0:
            raise ValueError("violation_threshold must be in [0, 1)")
        if backlog_threshold is not None and backlog_threshold < 1:
            raise ValueError("backlog_threshold must be >= 1 (or None)")
        if degree_boost < 1.0:
            raise ValueError("degree_boost must be >= 1.0")
        if recover_ticks < 1:
            raise ValueError("recover_ticks must be >= 1")
        if not 0 <= max_level < len(LEVEL_NAMES):
            raise ValueError(f"max_level must be in [0, {len(LEVEL_NAMES) - 1}]")
        self.violation_threshold = float(violation_threshold)
        self.backlog_threshold = backlog_threshold
        self.degree_boost = float(degree_boost)
        self.recover_ticks = int(recover_ticks)
        self.max_level = int(max_level)
        self.level = 0
        self.max_level_seen = 0
        self.escalations = 0
        self.recoveries = 0
        self._healthy_streak = 0
        self.transitions: list[tuple[float, int, int]] = []
        self._level_gauge = None
        self._shift_ctr = None
        self._recover_ctr = None

    def bind_metrics(self, registry: "MetricsRegistry") -> None:
        """Mirror level changes into a telemetry metrics registry."""
        self._level_gauge = registry.gauge(
            "propack_brownout_level",
            help="Current brownout degradation level (0 = normal).",
        )
        self._shift_ctr = registry.counter(
            "propack_brownout_shifts_total",
            help="Brownout level changes by direction.",
            direction="escalate",
        )
        self._recover_ctr = registry.counter(
            "propack_brownout_shifts_total", direction="recover"
        )

    # ------------------------------------------------------------------ #
    def _breached(self, violation_fraction: float, backlog: int) -> bool:
        if violation_fraction > self.violation_threshold:
            return True
        return (
            self.backlog_threshold is not None
            and backlog > self.backlog_threshold
        )

    def observe(self, now: float, violation_fraction: float, backlog: int) -> int:
        """One control tick; returns the (possibly new) brownout level."""
        if self._breached(violation_fraction, backlog):
            self._healthy_streak = 0
            if self.level < self.max_level:
                self.transitions.append((now, self.level, self.level + 1))
                self.level += 1
                self.escalations += 1
                self.max_level_seen = max(self.max_level_seen, self.level)
                if self._shift_ctr is not None:
                    self._shift_ctr.inc()
        else:
            self._healthy_streak += 1
            if self.level > 0 and self._healthy_streak >= self.recover_ticks:
                self.transitions.append((now, self.level, self.level - 1))
                self.level -= 1
                self.recoveries += 1
                self._healthy_streak = 0
                if self._recover_ctr is not None:
                    self._recover_ctr.inc()
        if self._level_gauge is not None:
            self._level_gauge.set(float(self.level))
        return self.level

    # ------------------------------------------------------------------ #
    @property
    def degree_multiplier(self) -> float:
        """Factor applied on top of the live policy's packing degree."""
        return self.degree_boost if self.level >= 1 else 1.0

    def sheds(self, priority: int) -> bool:
        """Is this priority class refused outright at the current level?"""
        return self.level >= 2 and priority >= LOW

    @property
    def level_name(self) -> str:
        return LEVEL_NAMES[self.level]
