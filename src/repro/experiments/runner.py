"""Shared experiment context: platforms, cached ProPack models, helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.propack import ProPack
from repro.experiments.config import ExperimentConfig
from repro.funcx import FuncXEndpoint
from repro.platform.base import ServerlessPlatform
from repro.platform.metrics import RunResult
from repro.platform.providers import (
    AWS_LAMBDA,
    AZURE_FUNCTIONS,
    GOOGLE_CLOUD_FUNCTIONS,
    PlatformProfile,
)


def improvement(baseline: float, treated: float) -> float:
    """Percentage improvement over the baseline (paper's reporting metric)."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return 100.0 * (1.0 - treated / baseline)


@dataclass
class ExperimentContext:
    """Caches platforms and ProPack model fits across figures.

    The scaling model is fit once per platform and the interference model
    once per (platform, app) — exactly the amortization the paper describes
    — so regenerating all figures does not re-profile per figure.
    """

    config: ExperimentConfig = field(default_factory=ExperimentConfig.full)
    _platforms: dict[str, ServerlessPlatform] = field(default_factory=dict)
    _propacks: dict[str, ProPack] = field(default_factory=dict)
    _funcx: Optional[FuncXEndpoint] = None

    def platform(self, profile: PlatformProfile = AWS_LAMBDA) -> ServerlessPlatform:
        plat = self._platforms.get(profile.name)
        if plat is None:
            plat = ServerlessPlatform(profile, seed=self.config.seed)
            self._platforms[profile.name] = plat
        return plat

    def propack(self, profile: PlatformProfile = AWS_LAMBDA) -> ProPack:
        pp = self._propacks.get(profile.name)
        if pp is None:
            pp = ProPack(self.platform(profile))
            self._propacks[profile.name] = pp
        return pp

    def funcx(self) -> FuncXEndpoint:
        if self._funcx is None:
            self._funcx = FuncXEndpoint(seed=self.config.seed)
        return self._funcx

    def cloud_profiles(self) -> tuple[PlatformProfile, ...]:
        return (AWS_LAMBDA, GOOGLE_CLOUD_FUNCTIONS, AZURE_FUNCTIONS)

    # ------------------------------------------------------------------ #
    def baseline(self, app, concurrency: int, profile=AWS_LAMBDA) -> RunResult:
        from repro.baselines.nopack import run_unpacked

        return run_unpacked(self.platform(profile), app, concurrency)
