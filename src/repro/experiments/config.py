"""Experiment grids and defaults.

``full`` mirrors the paper's sweeps (concurrency 1000-5000); ``quick`` is a
reduced grid used by the pytest benchmarks so the whole suite runs in
minutes on one core while still exercising every figure's code path and
shape assertions.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ExperimentConfig:
    """Grid sizes and defaults for one harness run."""

    concurrencies: tuple[int, ...] = (1000, 2000, 3000, 4000, 5000)
    high_concurrency: int = 5000
    mid_concurrency: int = 2000
    low_concurrency: int = 1000
    seed: int = 2023
    merits: tuple[str, ...] = ("total", "tail", "median")
    weight_grid: tuple[float, ...] = (0.1, 0.25, 0.5, 0.75, 0.9)
    oracle_stride: int = 1  # sweep every degree (paper: exhaustive)
    xapian_qos_s: float = 30.0
    repetitions: int = 3    # the paper repeats runs for significance
    failure_rates: tuple[float, ...] = (0.0, 0.05, 0.1, 0.2, 0.3)
    fault_concurrency: int = 2000
    # Long-horizon serving sweep (repro.serving): one diurnal "day" of
    # sustained traffic; quick mode compresses the day so the benchmark
    # suite stays fast while exercising the same trough→peak→trough sweep.
    serving_horizon_s: float = 86400.0
    serving_base_rate_per_s: float = 1.0
    serving_amplitude: float = 0.7
    serving_qos_s: float = 30.0
    # Overload-resilience sweep (repro.resilience): a flash crowd (MMPP
    # burst superposed on a diurnal base) under a faulty platform, served
    # unprotected vs. behind admission control / breakers / brownout.
    overload_horizon_s: float = 14400.0
    overload_base_rate_per_s: float = 1.0
    overload_flash_rate_per_s: float = 12.0
    overload_flash_mean_on_s: float = 300.0
    overload_flash_mean_off_s: float = 1500.0
    overload_qos_s: float = 90.0
    # Self-healing sweep (repro.remediation): stormy poisoning scenarios
    # served unprotected, behind a hand-tuned static config, and behind
    # the closed-loop auto-remediation control plane.
    selfheal_horizon_s: float = 7200.0
    selfheal_rate_per_s: float = 1.2
    selfheal_qos_s: float = 60.0
    selfheal_admission_limit: int = 64
    selfheal_handtuned_limit: int = 32
    selfheal_tick_interval_s: float = 60.0
    selfheal_shadow_horizon_s: float = 240.0
    # Chaos sweep (repro.chaos): a seeded adversarial search finds the
    # worst storm against unprotected serving; the figure then serves that
    # storm unprotected vs. protected with the invariant auditor attached.
    chaos_horizon_s: float = 1800.0
    chaos_rate_per_s: float = 4.0
    chaos_search_rounds: int = 2
    chaos_search_population: int = 3
    chaos_shrink_budget: int = 12
    chaos_slo_floor: float = 0.9
    # Fusion sweep (repro.fusion): user-side ProPack vs platform-side
    # fusion vs both on a mixed-app multi-tenant demand set, billed under
    # exact per-ms and legacy 100 ms-rounded schedules. Scales are chosen
    # off the ProPack degrees' divisors so remainder groups exist — the
    # raw material platform fusion consolidates.
    fusion_mix: str = "trio"
    fusion_burst_scale: int = 203
    fusion_serving_scale: int = 407
    fusion_granularity_s: float = 0.1
    fusion_min_billed_s: float = 0.1
    fusion_seed: int = 2023

    @classmethod
    def full(cls) -> "ExperimentConfig":
        return cls()

    @classmethod
    def quick(cls) -> "ExperimentConfig":
        return cls(
            concurrencies=(1000, 2000, 3500),
            high_concurrency=3500,
            mid_concurrency=2000,
            low_concurrency=1000,
            oracle_stride=2,
            xapian_qos_s=25.0,
            repetitions=1,
            failure_rates=(0.0, 0.1, 0.3),
            fault_concurrency=1000,
            serving_horizon_s=2400.0,
            serving_base_rate_per_s=1.5,
            overload_horizon_s=2400.0,
            overload_flash_rate_per_s=10.0,
            overload_flash_mean_on_s=240.0,
            overload_flash_mean_off_s=600.0,
            selfheal_horizon_s=2400.0,
            selfheal_shadow_horizon_s=120.0,
            chaos_horizon_s=480.0,
            chaos_search_rounds=1,
            chaos_search_population=2,
            chaos_shrink_budget=6,
            fusion_burst_scale=61,
            fusion_serving_scale=203,
        )
