"""Rendering of experiment results as text / markdown tables."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


def _format(value: Any) -> str:
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.01:
            return f"{value:.2e}"
        return f"{value:.2f}"
    return str(value)


@dataclass
class FigureResult:
    """One reproduced figure/table: identity, rows, and commentary."""

    figure_id: str
    title: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, **row: Any) -> None:
        missing = [c for c in self.columns if c not in row]
        extra = [k for k in row if k not in self.columns]
        if missing or extra:
            raise ValueError(
                f"{self.figure_id}: row keys mismatch (missing={missing}, extra={extra})"
            )
        self.rows.append(row)

    def column(self, name: str) -> list[Any]:
        if name not in self.columns:
            raise KeyError(f"{self.figure_id}: no column {name!r}")
        return [row[name] for row in self.rows]

    def select(self, **filters: Any) -> list[dict[str, Any]]:
        """Rows matching all equality filters."""
        return [
            row
            for row in self.rows
            if all(row.get(k) == v for k, v in filters.items())
        ]

    # ------------------------------------------------------------------ #
    def to_text(self) -> str:
        widths = {
            c: max(len(c), *(len(_format(r[c])) for r in self.rows)) if self.rows else len(c)
            for c in self.columns
        }
        header = " | ".join(c.ljust(widths[c]) for c in self.columns)
        sep = "-+-".join("-" * widths[c] for c in self.columns)
        lines = [f"== {self.figure_id}: {self.title} ==", header, sep]
        for row in self.rows:
            lines.append(
                " | ".join(_format(row[c]).ljust(widths[c]) for c in self.columns)
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        lines = [
            f"### {self.figure_id}: {self.title}",
            "",
            "| " + " | ".join(self.columns) + " |",
            "|" + "|".join("---" for _ in self.columns) + "|",
        ]
        for row in self.rows:
            lines.append("| " + " | ".join(_format(row[c]) for c in self.columns) + " |")
        for note in self.notes:
            lines.append(f"\n> {note}")
        return "\n".join(lines)


def render_all(results: Sequence[FigureResult], markdown: bool = False) -> str:
    parts = [r.to_markdown() if markdown else r.to_text() for r in results]
    return ("\n\n").join(parts)
