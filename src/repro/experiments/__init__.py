"""Experiment harness: regenerates every figure of the paper's evaluation.

Each ``fig*`` function in :mod:`~repro.experiments.figures` reproduces one
paper artifact (same workloads, same sweep structure, same reported rows)
against the simulated substrate. ``python -m repro.experiments all`` prints
every table; ``--quick`` shrinks the grids for smoke runs. The
per-experiment index lives in DESIGN.md; paper-vs-measured numbers in
EXPERIMENTS.md.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentContext
from repro.experiments.tables import FigureResult

__all__ = ["ExperimentConfig", "ExperimentContext", "FigureResult"]
