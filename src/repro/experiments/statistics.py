"""Statistical reporting helpers for repeated experiments.

The paper repeats each experiment "multiple times for statistical
significance"; these helpers summarize repeated measurements with
Student-t confidence intervals and a Welch two-sample test used by the
harness when comparing techniques.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class MeanCI:
    """Sample mean with a two-sided Student-t confidence interval."""

    mean: float
    low: float
    high: float
    confidence: float
    n: int

    @property
    def half_width(self) -> float:
        return (self.high - self.low) / 2.0

    def __str__(self) -> str:
        return f"{self.mean:.2f} ± {self.half_width:.2f} ({self.confidence:.0%} CI)"


def mean_ci(values: Sequence[float], confidence: float = 0.95) -> MeanCI:
    """Student-t CI of the mean (degenerate interval for n == 1)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("mean_ci of empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    mean = float(arr.mean())
    if arr.size == 1:
        return MeanCI(mean, mean, mean, confidence, 1)
    sem = float(arr.std(ddof=1) / np.sqrt(arr.size))
    t = float(stats.t.ppf(0.5 + confidence / 2.0, df=arr.size - 1))
    return MeanCI(mean, mean - t * sem, mean + t * sem, confidence, int(arr.size))


@dataclass(frozen=True)
class WelchResult:
    """Welch's unequal-variance t-test between two techniques."""

    statistic: float
    p_value: float
    significant: bool
    alpha: float


def welch_test(
    a: Sequence[float], b: Sequence[float], alpha: float = 0.05
) -> WelchResult:
    """Two-sided Welch test: are the two samples' means distinguishable?"""
    a_arr = np.asarray(a, dtype=float)
    b_arr = np.asarray(b, dtype=float)
    if a_arr.size < 2 or b_arr.size < 2:
        raise ValueError("Welch test needs at least two samples per side")
    statistic, p_value = stats.ttest_ind(a_arr, b_arr, equal_var=False)
    return WelchResult(
        statistic=float(statistic),
        p_value=float(p_value),
        significant=bool(p_value < alpha),
        alpha=alpha,
    )
