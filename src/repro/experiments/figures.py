"""One function per paper artifact.

Every function reproduces the corresponding figure's sweep and returns a
:class:`~repro.experiments.tables.FigureResult` whose rows are the series
the paper plots. Shape assertions live in ``benchmarks/``; this module only
measures.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.batching import SerialBatcher
from repro.baselines.nopack import run_unpacked
from repro.baselines.oracle import Oracle
from repro.baselines.pywren import PywrenManager
from repro.baselines.stagger import StaggeredInvoker
from repro.core.models import fit_model_family
from repro.experiments.runner import ExperimentContext, improvement
from repro.experiments.tables import FigureResult
from repro.platform.invoker import BurstSpec
from repro.platform.providers import AWS_LAMBDA
from repro.sim.stats import relative_spread
from repro.workloads import (
    SMITH_WATERMAN,
    SORT,
    STATELESS_COST,
    VIDEO,
    XAPIAN,
)

MOTIVATION_APPS = (VIDEO, SORT, STATELESS_COST)


# --------------------------------------------------------------------- #
# Motivation figures
# --------------------------------------------------------------------- #

def fig1(ctx: ExperimentContext) -> FigureResult:
    """Fig. 1 — scaling time as a fraction of total service time."""
    result = FigureResult(
        "F1",
        "Scaling time share of total service time (no packing)",
        ["platform", "app", "concurrency", "scaling_s", "service_s", "share_pct"],
    )
    for profile in ctx.cloud_profiles():
        for app in MOTIVATION_APPS:
            for c in ctx.config.concurrencies:
                run = ctx.baseline(app, c, profile)
                result.add(
                    platform=profile.name,
                    app=app.name,
                    concurrency=c,
                    scaling_s=run.scaling_time,
                    service_s=run.service_time(),
                    share_pct=100.0 * run.scaling_time / run.service_time(),
                )
    return result


def fig2(ctx: ExperimentContext) -> FigureResult:
    """Fig. 2 — scheduling/start-up/shipping each grow with concurrency.

    Reported as the paper does: each component's completion makespan as a
    percentage of its own value at the highest concurrency.
    """
    result = FigureResult(
        "F2",
        "Scaling-time components vs concurrency (% of value at max C)",
        ["concurrency", "scheduling_pct", "startup_pct", "shipping_pct"],
    )
    plat = ctx.platform()
    samples = {}
    for c in ctx.config.concurrencies:
        run = ctx.baseline(SORT, c)
        samples[c] = run.component_totals()
    top = samples[max(samples)]
    for c in ctx.config.concurrencies:
        result.add(
            concurrency=c,
            scheduling_pct=100.0 * samples[c]["scheduling"] / top["scheduling"],
            startup_pct=100.0 * samples[c]["startup"] / top["startup"],
            shipping_pct=100.0 * samples[c]["shipping"] / top["shipping"],
        )
    return result


def fig4(ctx: ExperimentContext) -> FigureResult:
    """Fig. 4 — execution time vs packing degree: observed + model fit."""
    result = FigureResult(
        "F4",
        "Instance execution time vs packing degree (observed vs model)",
        ["app", "degree", "observed_s", "model_s", "error_pct"],
    )
    pp = ctx.propack()
    for app in MOTIVATION_APPS:
        profile = pp.interference_profile(app)
        for degree, observed in profile.observed().items():
            model = profile.model.predict(degree)
            result.add(
                app=app.name,
                degree=degree,
                observed_s=observed,
                model_s=model,
                error_pct=100.0 * abs(model - observed) / observed,
            )
        result.notes.append(
            f"{app.name}: {len(profile.degrees)} sampled degrees, "
            f"alpha={profile.model.alpha:.4f}"
        )
    return result


def fig5a(ctx: ExperimentContext) -> FigureResult:
    """Fig. 5a — execution time of one instance is flat in concurrency."""
    result = FigureResult(
        "F5a",
        "Instance execution time vs concurrency level (packing degree 1)",
        ["app", "concurrency", "mean_exec_s"],
    )
    for app in MOTIVATION_APPS:
        series = []
        for c in ctx.config.concurrencies:
            run = ctx.baseline(app, c)
            series.append(run.mean_exec_seconds)
            result.add(app=app.name, concurrency=c, mean_exec_s=run.mean_exec_seconds)
        result.notes.append(
            f"{app.name}: relative spread {100 * relative_spread(series):.2f}% "
            "(paper: <5%)"
        )
    return result


def fig5b(ctx: ExperimentContext) -> FigureResult:
    """Fig. 5b — scaling time is independent of the application."""
    result = FigureResult(
        "F5b",
        "Scaling time vs concurrency, per application (no packing)",
        ["concurrency", "app", "scaling_s"],
    )
    by_c: dict[int, list[float]] = {}
    for app in MOTIVATION_APPS:
        for c in ctx.config.concurrencies:
            run = ctx.baseline(app, c)
            result.add(concurrency=c, app=app.name, scaling_s=run.scaling_time)
            by_c.setdefault(c, []).append(run.scaling_time)
    worst = max(relative_spread(v) for v in by_c.values())
    result.notes.append(
        f"max cross-application scaling-time spread at fixed C: {100 * worst:.2f}%"
    )
    return result


# --------------------------------------------------------------------- #
# Mechanism figures
# --------------------------------------------------------------------- #

def fig6(ctx: ExperimentContext) -> FigureResult:
    """Fig. 6 — scaling time falls with packing degree at fixed C."""
    c = ctx.config.high_concurrency
    result = FigureResult(
        "F6",
        f"Scaling time vs packing degree (concurrency {c})",
        ["app", "degree", "scaling_s"],
    )
    plat = ctx.platform()
    for app in MOTIVATION_APPS:
        max_degree = app.max_packing_degree(plat.profile.max_memory_mb)
        for degree in sorted({1, 2, 4, 8, min(12, max_degree), max_degree}):
            run = plat.run_burst(
                BurstSpec(app=app, concurrency=c, packing_degree=degree)
            )
            result.add(app=app.name, degree=degree, scaling_s=run.scaling_time)
    return result


def fig7(ctx: ExperimentContext) -> FigureResult:
    """Fig. 7 — expense is not monotonic in the packing degree (C=1000)."""
    c = ctx.config.low_concurrency
    result = FigureResult(
        "F7",
        f"Expense vs packing degree (concurrency {c})",
        ["app", "degree", "expense_usd"],
    )
    plat = ctx.platform()
    for app in MOTIVATION_APPS:
        max_degree = app.max_packing_degree(plat.profile.max_memory_mb)
        series = []
        for degree in range(1, max_degree + 1):
            run = plat.run_burst(
                BurstSpec(app=app, concurrency=c, packing_degree=degree)
            )
            series.append(run.expense.total_usd)
            result.add(app=app.name, degree=degree, expense_usd=run.expense.total_usd)
        arg = int(np.argmin(series)) + 1
        result.notes.append(
            f"{app.name}: expense minimum at degree {arg} of {max_degree}"
            + (" (interior minimum — non-monotonic)" if arg < max_degree else "")
        )
    return result


def fig8(ctx: ExperimentContext) -> FigureResult:
    """Fig. 8 — Oracle packing degree vs ProPack's, per figure of merit."""
    result = FigureResult(
        "F8",
        "Oracle vs ProPack packing degree (joint objective)",
        ["app", "concurrency", "merit", "oracle_degree", "propack_degree", "match"],
    )
    plat = ctx.platform()
    oracle = Oracle(plat)
    pp = ctx.propack()
    for app in MOTIVATION_APPS:
        max_degree = app.max_packing_degree(plat.profile.max_memory_mb)
        degrees = range(1, max_degree + 1, ctx.config.oracle_stride)
        for c in ctx.config.concurrencies:
            sweep = oracle.sweep(app, c, degrees=degrees)
            for merit in ctx.config.merits:
                oracle_deg = sweep.best_degree("joint", merit=merit)
                plan, _ = pp.plan(app, c, objective="joint", merit=merit)
                result.add(
                    app=app.name,
                    concurrency=c,
                    merit=merit,
                    oracle_degree=oracle_deg,
                    propack_degree=plan.degree,
                    match=abs(plan.degree - oracle_deg) <= 2,
                )
    return result


def validation_chi2(ctx: ExperimentContext) -> FigureResult:
    """Sec. 2.4 — χ² goodness of fit of the service & expense models."""
    result = FigureResult(
        "S2.4",
        "Pearson chi-square goodness of fit (critical value 4.075 @ dof 14)",
        ["app", "concurrency", "service_chi2", "expense_chi2", "accepted"],
    )
    pp = ctx.propack()
    for app in MOTIVATION_APPS:
        for c in (ctx.config.low_concurrency, ctx.config.high_concurrency):
            gof = pp.validate_models(app, c)
            result.add(
                app=app.name,
                concurrency=c,
                service_chi2=gof["service"].statistic,
                expense_chi2=gof["expense"].statistic,
                accepted=gof["service"].accepted and gof["expense"].accepted,
            )
    stats = [r["service_chi2"] for r in result.rows]
    result.notes.append(
        f"max service statistic {max(stats):.3f} (paper: 3.81); "
        f"max expense statistic {max(r['expense_chi2'] for r in result.rows):.4f} "
        "(paper: 0.055)"
    )
    return result


# --------------------------------------------------------------------- #
# Headline evaluation figures
# --------------------------------------------------------------------- #

def _improvement_sweep(ctx: ExperimentContext, metric: str) -> FigureResult:
    titles = {
        "service": ("F9", "Service-time improvement over no packing (%)"),
        "scaling": ("F10", "Scaling-time improvement over no packing (%)"),
        "expense": ("F11", "Expense improvement over no packing (%)"),
    }
    fig_id, title = titles[metric]
    # The paper reports the service figure across all figures of merit
    # (total/tail/median); scaling and expense are merit-free quantities.
    merits = ctx.config.merits if metric == "service" else ("total",)
    result = FigureResult(
        fig_id,
        title,
        ["app", "concurrency", "merit", "degree", "improvement_pct", "std_pct"],
    )
    pp = ctx.propack()
    for app in MOTIVATION_APPS:
        for c in ctx.config.concurrencies:
            for merit in merits:
                # The paper repeats every experiment for statistical
                # significance; we report the mean over repetitions.
                values = []
                degree = None
                for _ in range(ctx.config.repetitions):
                    base = ctx.baseline(app, c)
                    out = pp.run(app, c, objective="joint", merit=merit)
                    degree = out.plan.degree
                    if metric == "service":
                        values.append(
                            improvement(
                                base.service_time(merit),
                                out.result.service_time(merit),
                            )
                        )
                    elif metric == "scaling":
                        values.append(
                            improvement(base.scaling_time, out.result.scaling_time)
                        )
                    else:
                        values.append(
                            improvement(base.expense.total_usd, out.total_expense_usd)
                        )
                result.add(
                    app=app.name,
                    concurrency=c,
                    merit=merit,
                    degree=degree,
                    improvement_pct=float(np.mean(values)),
                    std_pct=float(np.std(values)),
                )
    high = [
        r["improvement_pct"]
        for r in result.rows
        if r["concurrency"] == ctx.config.high_concurrency
    ]
    result.notes.append(
        f"mean improvement at C={ctx.config.high_concurrency}: "
        f"{float(np.mean(high)):.1f}%"
    )
    return result


def fig9(ctx: ExperimentContext) -> FigureResult:
    """Fig. 9 — total service time improvement (85% avg at C=5000)."""
    return _improvement_sweep(ctx, "service")


def fig10(ctx: ExperimentContext) -> FigureResult:
    """Fig. 10 — scaling time improvement (>90% at C=5000)."""
    return _improvement_sweep(ctx, "scaling")


def fig11(ctx: ExperimentContext) -> FigureResult:
    """Fig. 11 — expense improvement (66% avg at C=5000)."""
    return _improvement_sweep(ctx, "expense")


def fig12(ctx: ExperimentContext) -> FigureResult:
    """Fig. 12 — absolute service function-hours and expense at C=2000."""
    c = ctx.config.mid_concurrency
    result = FigureResult(
        "F12",
        f"Absolute function-hours and expense (concurrency {c})",
        ["app", "variant", "function_hours", "expense_usd"],
    )
    pp = ctx.propack()
    for app in MOTIVATION_APPS:
        base = ctx.baseline(app, c)
        out = pp.run(app, c, objective="joint")
        result.add(
            app=app.name,
            variant="no packing",
            function_hours=base.function_hours,
            expense_usd=base.expense.total_usd,
        )
        result.add(
            app=app.name,
            variant="propack",
            function_hours=out.result.function_hours,
            expense_usd=out.total_expense_usd,
        )
    return result


def fig13(ctx: ExperimentContext) -> FigureResult:
    """Fig. 13 — ProPack(Service Time) vs joint on service time."""
    return _single_objective_delta(ctx, "service", "F13")


def fig14(ctx: ExperimentContext) -> FigureResult:
    """Fig. 14 — ProPack(Expense) vs joint on expense."""
    return _single_objective_delta(ctx, "expense", "F14")


def _single_objective_delta(
    ctx: ExperimentContext, objective: str, fig_id: str
) -> FigureResult:
    metric_name = "service" if objective == "service" else "expense"
    result = FigureResult(
        fig_id,
        f"ProPack({objective}-only) vs ProPack(joint): {metric_name} improvement (%)",
        [
            "app",
            "concurrency",
            "joint_improvement_pct",
            "single_improvement_pct",
            "delta_pct",
        ],
    )
    pp = ctx.propack()
    deltas = []
    for app in MOTIVATION_APPS:
        for c in ctx.config.concurrencies:
            base = ctx.baseline(app, c)
            joint = pp.run(app, c, objective="joint")
            single = pp.run(app, c, objective=objective)
            if objective == "service":
                base_v = base.service_time()
                joint_v = joint.result.service_time()
                single_v = single.result.service_time()
            else:
                base_v = base.expense.total_usd
                joint_v = joint.total_expense_usd
                single_v = single.total_expense_usd
            joint_imp = improvement(base_v, joint_v)
            single_imp = improvement(base_v, single_v)
            deltas.append(single_imp - joint_imp)
            result.add(
                app=app.name,
                concurrency=c,
                joint_improvement_pct=joint_imp,
                single_improvement_pct=single_imp,
                delta_pct=single_imp - joint_imp,
            )
    result.notes.append(
        f"mean extra improvement of the single-objective variant: "
        f"{float(np.mean(deltas)):.1f}% (paper: 7.5% service / 9.3% expense)"
    )
    return result


def fig15(ctx: ExperimentContext) -> FigureResult:
    """Fig. 15 — Oracle degrees: service-only vs expense-only objectives."""
    result = FigureResult(
        "F15",
        "Oracle packing degree by objective (and ProPack's choice)",
        [
            "app",
            "concurrency",
            "objective",
            "oracle_degree",
            "propack_degree",
            "match",
        ],
    )
    plat = ctx.platform()
    oracle = Oracle(plat)
    pp = ctx.propack()
    for app in MOTIVATION_APPS:
        max_degree = app.max_packing_degree(plat.profile.max_memory_mb)
        degrees = range(1, max_degree + 1, ctx.config.oracle_stride)
        for c in (ctx.config.low_concurrency, ctx.config.mid_concurrency):
            sweep = oracle.sweep(app, c, degrees=degrees)
            for objective in ("service", "expense"):
                oracle_deg = sweep.best_degree(objective)
                plan, _ = pp.plan(app, c, objective=objective)
                result.add(
                    app=app.name,
                    concurrency=c,
                    objective=objective,
                    oracle_degree=oracle_deg,
                    propack_degree=plan.degree,
                    match=abs(plan.degree - oracle_deg) <= 2,
                )
    return result


def fig16(ctx: ExperimentContext) -> FigureResult:
    """Fig. 16 — effect of the W_S/W_E weights (Stateless @ high C)."""
    c = ctx.config.high_concurrency
    app = STATELESS_COST
    result = FigureResult(
        "F16",
        f"Weight sweep for {app.name} (concurrency {c})",
        ["w_s", "w_e", "degree", "service_improvement_pct", "expense_improvement_pct"],
    )
    pp = ctx.propack()
    base = ctx.baseline(app, c)
    for w_s in ctx.config.weight_grid:
        out = pp.run(app, c, objective="joint", w_s=w_s)
        result.add(
            w_s=w_s,
            w_e=round(1.0 - w_s, 2),
            degree=out.plan.degree,
            service_improvement_pct=improvement(
                base.service_time(), out.result.service_time()
            ),
            expense_improvement_pct=improvement(
                base.expense.total_usd, out.total_expense_usd
            ),
        )
    return result


def fig17(ctx: ExperimentContext) -> FigureResult:
    """Fig. 17 — Smith-Waterman improvements (service/scaling/expense)."""
    app = SMITH_WATERMAN
    result = FigureResult(
        "F17",
        "Smith-Waterman improvements over no packing (%)",
        [
            "concurrency",
            "degree",
            "service_improvement_pct",
            "scaling_improvement_pct",
            "expense_improvement_pct",
        ],
    )
    pp = ctx.propack()
    for c in ctx.config.concurrencies:
        base = ctx.baseline(app, c)
        out = pp.run(app, c, objective="joint")
        result.add(
            concurrency=c,
            degree=out.plan.degree,
            service_improvement_pct=improvement(
                base.service_time(), out.result.service_time()
            ),
            scaling_improvement_pct=improvement(
                base.scaling_time, out.result.scaling_time
            ),
            expense_improvement_pct=improvement(
                base.expense.total_usd, out.total_expense_usd
            ),
        )
    max_deg = app.max_packing_degree(ctx.platform().profile.max_memory_mb)
    result.notes.append(
        f"max packing degree {max_deg}; chosen degrees stay well below it "
        "(compute-intensive functions pack poorly — paper Fig. 17)"
    )
    return result


def fig18(ctx: ExperimentContext) -> FigureResult:
    """Fig. 18 — FuncX vs AWS Lambda: scaling, and ProPack on both."""
    result = FigureResult(
        "F18",
        "FuncX vs AWS Lambda (scaling time and ProPack service time)",
        ["concurrency", "aws_scaling_s", "funcx_scaling_s", "funcx_speedup_pct",
         "app", "aws_propack_service_s", "funcx_propack_service_s"],
    )
    aws = ctx.platform()
    funcx = ctx.funcx()
    pp_aws = ctx.propack()
    from repro.core.propack import ProPack

    pp_fx = ProPack(funcx.platform)
    for c in ctx.config.concurrencies:
        aws_scaling = aws.measure_scaling_time(c)
        fx_scaling = funcx.measure_scaling_time(c)
        for app in (SORT,):
            aws_out = pp_aws.run(app, c, objective="joint")
            fx_out = pp_fx.run(app, c, objective="joint")
            result.add(
                concurrency=c,
                aws_scaling_s=aws_scaling,
                funcx_scaling_s=fx_scaling,
                funcx_speedup_pct=improvement(aws_scaling, fx_scaling),
                app=app.name,
                aws_propack_service_s=aws_out.result.service_time(),
                funcx_propack_service_s=fx_out.result.service_time(),
            )
    return result


def fig19(ctx: ExperimentContext) -> FigureResult:
    """Fig. 19 — ProPack vs Pywren (service time and expense)."""
    result = FigureResult(
        "F19",
        "ProPack improvement over Pywren (%)",
        ["app", "concurrency", "service_improvement_pct", "expense_improvement_pct"],
    )
    plat = ctx.platform()
    pp = ctx.propack()
    pywren = PywrenManager(plat)
    service_imps, expense_imps = [], []
    for app in MOTIVATION_APPS:
        for c in ctx.config.concurrencies:
            pw = pywren.map(app, c)
            out = pp.run(app, c, objective="joint")
            s_imp = improvement(pw.service_time(), out.result.service_time())
            e_imp = improvement(pw.expense.total_usd, out.total_expense_usd)
            service_imps.append(s_imp)
            expense_imps.append(e_imp)
            result.add(
                app=app.name,
                concurrency=c,
                service_improvement_pct=s_imp,
                expense_improvement_pct=e_imp,
            )
    result.notes.append(
        f"mean: service {float(np.mean(service_imps)):.1f}% "
        f"(paper: 52%), expense {float(np.mean(expense_imps)):.1f}% (paper: 78%)"
    )
    return result


def fig20(ctx: ExperimentContext) -> FigureResult:
    """Fig. 20 — Xapian under a QoS bound on tail latency."""
    app = XAPIAN
    c = ctx.config.high_concurrency
    qos = ctx.config.xapian_qos_s
    result = FigureResult(
        "F20",
        f"Xapian QoS-aware packing (concurrency {c}, QoS tail <= {qos}s)",
        ["variant", "w_s", "degree", "tail_service_s", "expense_usd",
         "meets_qos", "tail_improvement_pct", "expense_improvement_pct"],
    )
    pp = ctx.propack()
    base = ctx.baseline(app, c)
    base_tail = base.service_time("tail")
    base_usd = base.expense.total_usd

    service_out = pp.run(app, c, objective="service", merit="tail")
    qos_out = pp.run(app, c, objective="joint", qos_tail_bound_s=qos)
    expense_out = pp.run(app, c, objective="expense")
    for variant, out, w_s in (
        ("service-only", service_out, 1.0),
        ("qos-joint", qos_out, qos_out.qos_decision.w_s),
        ("expense-only", expense_out, 0.0),
    ):
        tail = out.result.service_time("tail")
        result.add(
            variant=variant,
            w_s=w_s,
            degree=out.plan.degree,
            tail_service_s=tail,
            expense_usd=out.total_expense_usd,
            meets_qos=tail <= qos,
            tail_improvement_pct=improvement(base_tail, tail),
            expense_improvement_pct=improvement(base_usd, out.total_expense_usd),
        )
    result.notes.append(
        f"QoS search chose W_S={qos_out.qos_decision.w_s:.2f} "
        f"(paper: 0.65 for Xapian); baseline tail {base_tail:.1f}s"
    )
    return result


def fig21(ctx: ExperimentContext) -> FigureResult:
    """Fig. 21 — improvements across cloud providers (C=1000)."""
    c = ctx.config.low_concurrency
    result = FigureResult(
        "F21",
        f"Cross-platform improvements (concurrency {c})",
        ["platform", "app", "degree", "service_improvement_pct",
         "expense_improvement_pct"],
    )
    for profile in ctx.cloud_profiles():
        pp = ctx.propack(profile)
        for app in MOTIVATION_APPS:
            base = ctx.baseline(app, c, profile)
            out = pp.run(app, c, objective="joint")
            result.add(
                platform=profile.name,
                app=app.name,
                degree=out.plan.degree,
                service_improvement_pct=improvement(
                    base.service_time(), out.result.service_time()
                ),
                expense_improvement_pct=improvement(
                    base.expense.total_usd, out.total_expense_usd
                ),
            )
    return result


# --------------------------------------------------------------------- #
# Ablations (ours, grounded in the paper's design discussion)
# --------------------------------------------------------------------- #

def ablation_model_families(ctx: ExperimentContext) -> FigureResult:
    """Sec. 2.2's model selection: which family fits ET and scaling best."""
    result = FigureResult(
        "A1",
        "Model-family fit ranking (SSE) for ET(P) and Scaling(C)",
        ["curve", "family", "sse", "rank"],
    )
    pp = ctx.propack()
    profile = pp.interference_profile(VIDEO)
    fits = fit_model_family(profile.degrees, profile.exec_times)
    for rank, fit in enumerate(fits, start=1):
        result.add(curve="exec-time(video)", family=fit.family, sse=fit.sse, rank=rank)
    scaling = pp.scaling_profile()
    fits = fit_model_family(scaling.concurrencies, scaling.scaling_times)
    for rank, fit in enumerate(fits, start=1):
        result.add(curve="scaling(aws)", family=fit.family, sse=fit.sse, rank=rank)
    return result


def ablation_alternatives(ctx: ExperimentContext) -> FigureResult:
    """Serial batching and staggering vs ProPack (paper Secs. 1 and 4)."""
    c = ctx.config.mid_concurrency
    result = FigureResult(
        "A2",
        f"Alternative mitigations vs ProPack (concurrency {c})",
        ["app", "technique", "service_s", "expense_usd"],
    )
    plat = ctx.platform()
    pp = ctx.propack()
    for app in (SORT, STATELESS_COST):
        base = ctx.baseline(app, c)
        result.add(app=app.name, technique="no packing",
                   service_s=base.service_time(), expense_usd=base.expense.total_usd)
        batch = SerialBatcher(plat, batch_size=500).run(app, c)
        result.add(app=app.name, technique="serial batching (500)",
                   service_s=batch.service_time, expense_usd=batch.expense_usd)
        stag = StaggeredInvoker(plat, delay_s=0.25).run(app, c)
        result.add(app=app.name, technique="staggered (0.25s)",
                   service_s=stag.service_time, expense_usd=stag.expense_usd)
        out = pp.run(app, c, objective="joint")
        result.add(app=app.name, technique="propack",
                   service_s=out.result.service_time(),
                   expense_usd=out.total_expense_usd)
    return result


def ablation_provider_mitigation(ctx: ExperimentContext) -> FigureResult:
    """Paper Sec. 5: effective provider-side mitigation lowers P_opt.

    Sweep the scheduler-search coefficient down (the provider 'fixing' its
    control plane) and watch the service-time-optimal packing degree shrink
    — the desirable outcome the paper predicts for functions with large
    memory footprints. (The expense-optimal degree is scaling-independent,
    so the service objective is where mitigation shows.)
    """
    from repro.core.propack import ProPack
    from repro.platform.base import ServerlessPlatform

    c = ctx.config.mid_concurrency
    result = FigureResult(
        "A3",
        f"Provider-side mitigation sweep (concurrency {c}, app=sort)",
        ["sched_search_factor", "scaling_at_c_s", "degree",
         "service_improvement_pct"],
    )
    for factor in (1.0, 0.5, 0.25, 0.1, 0.02):
        profile = AWS_LAMBDA.with_overrides(
            name=f"aws-mitigated-{factor}",
            sched_search_s=AWS_LAMBDA.sched_search_s * factor,
        )
        platform = ServerlessPlatform(profile, seed=ctx.config.seed)
        pp = ProPack(platform)
        base = run_unpacked(platform, SORT, c)
        out = pp.run(SORT, c, objective="service")
        result.add(
            sched_search_factor=factor,
            scaling_at_c_s=base.scaling_time,
            degree=out.plan.degree,
            service_improvement_pct=improvement(
                base.service_time(), out.result.service_time()
            ),
        )
    return result


def ablation_skew(ctx: ExperimentContext) -> FigureResult:
    """Input skew robustness (our extension).

    The paper's models assume homogeneous per-function work. With skewed
    inputs a packed instance waits for its slowest function, so the
    homogeneous model under-predicts packed execution — this ablation
    quantifies how the χ² fit and the realized improvement degrade as the
    coefficient of variation grows.
    """
    from repro.core.validation import chi_square_statistic
    from repro.platform.base import ServerlessPlatform

    c = ctx.config.mid_concurrency
    app = SORT
    result = FigureResult(
        "A4",
        f"Input-skew robustness (app={app.name}, concurrency {c})",
        ["skew_cv", "service_chi2", "service_improvement_pct"],
    )
    # Timeout enforcement off: at high skew the slowest straggler in a
    # fully packed instance can cross the 15-minute cap, and this ablation
    # wants to observe that regime, not crash on it.
    plat = ServerlessPlatform(AWS_LAMBDA, seed=ctx.config.seed, enforce_timeout=False)
    pp = ctx.propack()
    optimizer = pp.optimizer(app, c)
    degrees = [d for d in optimizer.degrees() if d % 2 == 1]
    plan, _ = pp.plan(app, c, objective="joint")
    for cv in (0.0, 0.2, 0.4, 0.8):
        observed, expected = [], []
        for degree in degrees:
            run = plat.run_burst(
                BurstSpec(app=app, concurrency=c, packing_degree=degree, skew_cv=cv)
            )
            observed.append(run.service_time())
            expected.append(optimizer.service.predict(degree))
        base = plat.run_burst(BurstSpec(app=app, concurrency=c, skew_cv=cv))
        packed = plat.run_burst(
            BurstSpec(app=app, concurrency=c, packing_degree=plan.degree, skew_cv=cv)
        )
        result.add(
            skew_cv=cv,
            service_chi2=chi_square_statistic(observed, expected),
            service_improvement_pct=improvement(
                base.service_time(), packed.service_time()
            ),
        )
    return result


def ablation_amortization(ctx: ExperimentContext) -> FigureResult:
    """Overhead amortization over repeated runs (paper Sec. 2.2 note)."""
    from repro.extensions.campaigns import run_campaign
    from repro.platform.base import ServerlessPlatform

    c = ctx.config.low_concurrency
    result = FigureResult(
        "A5",
        f"Profiling-overhead amortization (app={STATELESS_COST.name}, "
        f"concurrency {c})",
        ["runs", "cumulative_expense_improvement_pct", "overhead_share_pct"],
    )
    platform = ServerlessPlatform(AWS_LAMBDA, seed=ctx.config.seed + 1)
    report = run_campaign(platform, STATELESS_COST, c, runs=6)
    for n, pct in report.amortization_curve():
        packed = sum(report.per_run_packed_usd[:n]) + report.overhead_usd
        result.add(
            runs=n,
            cumulative_expense_improvement_pct=pct,
            overhead_share_pct=100.0 * report.overhead_usd / packed,
        )
    return result


def ablation_rightsizing(ctx: ExperimentContext) -> FigureResult:
    """How much of the expense win comes from the paper's 10 GB baseline?

    The paper provisions maximum-memory instances for *all* runs (Sec. 3),
    so the unpacked baseline pays for 10 GB per function. A cost-conscious
    user might right-size the baseline to the function's footprint — but on
    Lambda, CPU scales with memory, so the right-sized function runs on a
    fraction of a core and its execution time balloons. This ablation
    re-baselines against that realistic right-sized deployment: the expense
    gap narrows (GB-seconds are nearly CPU-bound-invariant) while ProPack
    dominates on service time — quantifying why the paper's max-memory
    setup is the right operating point for concurrent bursts.
    """
    c = ctx.config.mid_concurrency
    result = FigureResult(
        "A6",
        f"Right-sized baseline ablation (concurrency {c})",
        ["app", "baseline", "baseline_usd", "propack_usd",
         "expense_improvement_pct", "service_improvement_pct"],
    )
    plat = ctx.platform()
    pp = ctx.propack()
    for app in MOTIVATION_APPS:
        out = pp.run(app, c, objective="joint")
        for label, provisioned in (
            ("max-memory (paper)", None),
            ("right-sized", app.mem_mb),
        ):
            base = plat.run_burst(
                BurstSpec(app=app, concurrency=c, provisioned_mb=provisioned)
            )
            result.add(
                app=app.name,
                baseline=label,
                baseline_usd=base.expense.total_usd,
                propack_usd=out.total_expense_usd,
                expense_improvement_pct=improvement(
                    base.expense.total_usd, out.total_expense_usd
                ),
                service_improvement_pct=improvement(
                    base.service_time(), out.result.service_time()
                ),
            )
    return result


def streaming_policies(ctx: ExperimentContext) -> FigureResult:
    """S1 (ours) — packing a sustained request stream under a sojourn QoS.

    For several Poisson arrival rates, plan a ``(degree, timeout)`` policy
    with the streaming planner and validate it against the discrete-event
    stream simulation. Cost per request falls as traffic grows (fuller
    batches fit under the same bound).
    """
    from repro.extensions.streaming import (
        StreamingDispatcher,
        StreamingPlanner,
        StreamingPolicy,
    )
    from repro.workloads import XAPIAN

    qos = 25.0
    result = FigureResult(
        "S1",
        f"Streaming packing for {XAPIAN.name} (p95 sojourn <= {qos}s)",
        ["rate_per_s", "degree", "timeout_s", "p95_sojourn_s", "meets_qos",
         "usd_per_1k_requests", "savings_vs_solo_pct"],
    )
    pp = ctx.propack()
    exec_model = pp.exec_model(XAPIAN)
    planner = StreamingPlanner(AWS_LAMBDA, XAPIAN, exec_model)
    dispatcher = StreamingDispatcher(
        AWS_LAMBDA, XAPIAN, exec_model, seed=ctx.config.seed
    )
    n = 400
    for rate in (0.5, 2.0, 8.0, 32.0):
        policy = planner.plan(arrival_rate_per_s=rate, qos_sojourn_s=qos)
        run = dispatcher.run(policy, rate, n)
        solo = dispatcher.run(
            StreamingPolicy(degree=1, batch_timeout_s=0.0), rate, n, repetition=1
        )
        cost = run.cost_per_request_usd(AWS_LAMBDA)
        solo_cost = solo.cost_per_request_usd(AWS_LAMBDA)
        result.add(
            rate_per_s=rate,
            degree=policy.degree,
            timeout_s=policy.batch_timeout_s,
            p95_sojourn_s=run.p95_sojourn_s,
            meets_qos=run.p95_sojourn_s <= qos,
            usd_per_1k_requests=cost * 1000,
            savings_vs_solo_pct=improvement(solo_cost, cost),
        )
    return result


def multitenant_benefit(ctx: ExperimentContext) -> FigureResult:
    """M2 (ours) — the provider-side benefit of packing (paper Sec. 5).

    Two tenants share one fleet: a big analytics burst and a small
    latency-sensitive burst. Sweep the big tenant's packing degree and
    measure the *small* tenant's scaling time — packing by one tenant
    frees the shared placement loop for everyone else.
    """
    from repro.platform.multitenant import SharedFleet
    from repro.workloads import XAPIAN

    big_c = min(3000, ctx.config.high_concurrency)
    result = FigureResult(
        "M2",
        f"Neighbor-tenant benefit of packing (big tenant C={big_c})",
        ["big_tenant_degree", "big_scaling_s", "small_scaling_s",
         "small_service_s"],
    )
    for degree in (1, 2, 4, 8):
        fleet = SharedFleet(AWS_LAMBDA, seed=ctx.config.seed)
        fleet.submit(
            "big", BurstSpec(app=SORT, concurrency=big_c, packing_degree=degree)
        )
        fleet.submit("small", BurstSpec(app=XAPIAN, concurrency=300))
        results = fleet.run()
        result.add(
            big_tenant_degree=degree,
            big_scaling_s=results["big"].scaling_time,
            small_scaling_s=results["small"].scaling_time,
            small_service_s=results["small"].service_time(),
        )
    return result


def decentralization_matrix(ctx: ExperimentContext) -> FigureResult:
    """D1 (ours) — packing composes with decentralized scheduling.

    Paper Sec. 5: Wukong/FaaSNet-style decentralization attacks the same
    bottleneck from the provider side; it is "not free" (synchronization
    overhead grows with the shard count) and "not necessarily competitive"
    with packing. This matrix crosses control-plane topologies with
    packing: decentralization collapses scaling time (until sync overhead
    bites), but only packing also cuts expense — and the combination wins
    on both axes.
    """
    from repro.core.propack import ProPack
    from repro.platform.base import ServerlessPlatform

    c = ctx.config.high_concurrency
    result = FigureResult(
        "D1",
        f"Decentralized scheduling x packing (app=sort, C={c})",
        ["shards", "packing", "degree", "scaling_s", "service_s", "expense_usd"],
    )
    for shards in (1, 4, 64):
        profile = AWS_LAMBDA.with_overrides(
            name=f"aws-shards-{shards}", scheduler_shards=shards
        )
        platform = ServerlessPlatform(profile, seed=ctx.config.seed)
        base = run_unpacked(platform, SORT, c)
        result.add(
            shards=shards, packing="none", degree=1,
            scaling_s=base.scaling_time, service_s=base.service_time(),
            expense_usd=base.expense.total_usd,
        )
        out = ProPack(platform).run(SORT, c, objective="joint")
        result.add(
            shards=shards, packing="propack", degree=out.plan.degree,
            scaling_s=out.result.scaling_time,
            service_s=out.result.service_time(),
            expense_usd=out.total_expense_usd,
        )
    return result


def fault_sweep(ctx: ExperimentContext) -> FigureResult:
    """Failure-blind vs failure-aware packing across crash rates.

    Sweeps the per-attempt failure rate and compares the seed's
    failure-blind planner against the failure-aware planner (expected
    retry costs folded into the model curves) on the same flaky platform:
    chosen degree, realized service time, expense, and the work-loss
    ratio (wasted billed GB-seconds / total billed GB-seconds).
    """
    from repro.baselines.failureblind import compare_failure_awareness
    from repro.platform.base import ServerlessPlatform

    result = FigureResult(
        "FAULTS",
        "Failure-aware packing vs the failure-blind planner",
        [
            "failure_rate", "planner", "degree", "service_s", "expense_usd",
            "failed_attempts", "lost_functions", "work_loss_pct",
        ],
    )
    c = ctx.config.fault_concurrency
    for rate in ctx.config.failure_rates:
        profile = AWS_LAMBDA.with_overrides(
            name=f"aws-lambda-q{rate}", failure_rate=rate
        )
        platform = ServerlessPlatform(profile, seed=ctx.config.seed)
        comparison = compare_failure_awareness(platform, SORT, c)
        for planner, outcome in (
            ("blind", comparison.blind), ("aware", comparison.aware)
        ):
            run = outcome.result
            result.add(
                failure_rate=rate,
                planner=planner,
                degree=outcome.plan.degree,
                service_s=run.service_time(),
                expense_usd=outcome.total_expense_usd,
                failed_attempts=run.n_failed_attempts,
                lost_functions=run.lost_functions,
                work_loss_pct=100.0 * run.fault_stats.work_loss_ratio,
            )
    high = max(ctx.config.failure_rates)
    blind_deg = [r["degree"] for r in result.select(failure_rate=high, planner="blind")]
    aware_deg = [r["degree"] for r in result.select(failure_rate=high, planner="aware")]
    result.notes.append(
        f"at q={high}: blind packs P={blind_deg[0]}, aware backs off to "
        f"P={aware_deg[0]} (each crash of a packed instance loses P× work)"
    )
    return result


def serving_day(ctx: ExperimentContext) -> FigureResult:
    """SV1 (ours) — a simulated diurnal day of sustained service.

    Crosses keep-alive policy {none, fixed TTL, hybrid histogram} with
    planning mode {static policy planned at the base rate, online
    replanner} over one diurnal day of Xapian traffic. Reports cost per
    1k requests, cold-start fraction, p99 sojourn, and SLO violations —
    the acceptance claim is that the hybrid histogram beats no-keep-alive
    on cold-start fraction at equal-or-lower total cost.
    """
    from repro.extensions.streaming import StreamingPlanner
    from repro.serving import (
        DiurnalProcess,
        FixedTTL,
        HybridHistogram,
        NoKeepAlive,
        OnlineReplanner,
        ServingConfig,
        ServingSimulator,
        WarmPool,
    )
    from repro.workloads import XAPIAN

    cfg = ctx.config
    result = FigureResult(
        "SV1",
        (
            f"Diurnal serving day for {XAPIAN.name} "
            f"(horizon={cfg.serving_horizon_s:g}s, base rate="
            f"{cfg.serving_base_rate_per_s:g}/s, QoS p99 <= "
            f"{cfg.serving_qos_s:g}s)"
        ),
        [
            "keepalive", "mode", "requests", "usd_per_1k_requests",
            "cold_start_pct", "idle_gb_s", "p50_s", "p99_s",
            "slo_violation_pct", "policy_changes", "final_degree",
        ],
    )
    pp = ctx.propack()
    exec_model = pp.exec_model(XAPIAN)
    scaling_model = pp.scaling_model()
    serving_cfg = ServingConfig(qos_sojourn_s=cfg.serving_qos_s)
    process = DiurnalProcess(
        base_rate_per_s=cfg.serving_base_rate_per_s,
        amplitude=cfg.serving_amplitude,
        period_s=cfg.serving_horizon_s,
    )
    static_policy = StreamingPlanner(AWS_LAMBDA, XAPIAN, exec_model).plan(
        arrival_rate_per_s=cfg.serving_base_rate_per_s,
        qos_sojourn_s=cfg.serving_qos_s,
    )
    policies = (NoKeepAlive, lambda: FixedTTL(60.0), HybridHistogram)
    for make_policy in policies:
        for mode in ("static", "replan"):
            controller = (
                OnlineReplanner(
                    AWS_LAMBDA,
                    XAPIAN,
                    exec_model,
                    qos_sojourn_s=cfg.serving_qos_s,
                    scaling_model=scaling_model,
                )
                if mode == "replan"
                else None
            )
            simulator = ServingSimulator(
                AWS_LAMBDA,
                XAPIAN,
                exec_model,
                pool=WarmPool(make_policy()),
                config=serving_cfg,
                controller=controller,
                seed=cfg.seed,
            )
            run = simulator.run(process, static_policy, cfg.serving_horizon_s)
            result.add(
                keepalive=run.policy_name,
                mode=mode,
                requests=run.n_requests,
                usd_per_1k_requests=run.cost_per_request_usd() * 1000,
                cold_start_pct=100.0 * run.cold_start_fraction,
                idle_gb_s=run.idle_gb_seconds,
                p50_s=run.p50_sojourn_s,
                p99_s=run.p99_sojourn_s,
                slo_violation_pct=100.0 * run.slo_violation_fraction,
                policy_changes=run.policy_changes,
                final_degree=run.final_degree,
            )
    none_static = result.select(keepalive="no-keep-alive", mode="static")[0]
    hybrid_static = [
        r for r in result.rows
        if r["mode"] == "static" and r["keepalive"].startswith("hybrid")
    ][0]
    result.notes.append(
        "hybrid histogram vs no-keep-alive (static): cold starts "
        f"{hybrid_static['cold_start_pct']:.1f}% vs "
        f"{none_static['cold_start_pct']:.1f}% at "
        f"${hybrid_static['usd_per_1k_requests']:.4f} vs "
        f"${none_static['usd_per_1k_requests']:.4f} per 1k requests"
    )
    return result


def overload_flashcrowd(ctx: ExperimentContext) -> FigureResult:
    """OV1 (ours) — protection mode × flash-crowd arrivals under faults.

    An MMPP flash crowd (burst rate ×10+ the diurnal base) hits a faulty
    platform (elevated crashes with a persistent tail, a throttled control
    plane, stragglers). The same traffic and fault seed are served three
    ways: unprotected (PR 2 loop), admission-only, and full protection
    (admission + per-domain circuit breakers + brownout). The acceptance
    claim is that protected serving achieves strictly higher windowed P99
    SLO attainment than unprotected at equal-or-lower expense per
    *completed* request — shedding is only worth it if the survivors are
    cheap and on time.
    """
    import numpy as np

    from repro.extensions.streaming import StreamingPlanner
    from repro.faults.retry import ExponentialBackoffRetry
    from repro.faults.scenario import FaultScenario
    from repro.platform.providers import GOOGLE_CLOUD_FUNCTIONS
    from repro.resilience import (
        BrownoutController,
        CircuitBreakerBank,
        ConcurrencyLimitAdmission,
        ResiliencePolicy,
    )
    from repro.serving import (
        DiurnalProcess,
        FixedTTL,
        MarkovModulatedProcess,
        OnlineReplanner,
        ServingConfig,
        ServingSimulator,
        SuperposedProcess,
        WarmPool,
    )
    from repro.workloads import XAPIAN

    cfg = ctx.config
    profile = GOOGLE_CLOUD_FUNCTIONS  # egress is billed, so retries show up
    result = FigureResult(
        "OV1",
        (
            f"Flash-crowd overload for {XAPIAN.name} on {profile.name} "
            f"(horizon={cfg.overload_horizon_s:g}s, base="
            f"{cfg.overload_base_rate_per_s:g}/s, flash="
            f"{cfg.overload_flash_rate_per_s:g}/s, QoS p99 <= "
            f"{cfg.overload_qos_s:g}s)"
        ),
        [
            "protection", "requests", "completed", "shed", "failed",
            "attainment_pct", "p99_s", "usd_per_1k_completed",
            "wasted_gb_s", "retries", "throttled", "breaker_transitions",
            "brownout_level", "max_backlog",
        ],
    )
    exec_model = ctx.propack().exec_model(XAPIAN)
    process = SuperposedProcess([
        DiurnalProcess(
            base_rate_per_s=cfg.overload_base_rate_per_s,
            amplitude=cfg.serving_amplitude,
            period_s=cfg.overload_horizon_s,
        ),
        MarkovModulatedProcess(
            cfg.overload_flash_rate_per_s,
            0.0,
            mean_on_s=cfg.overload_flash_mean_on_s,
            mean_off_s=cfg.overload_flash_mean_off_s,
            start_on=False,
        ),
    ])
    scenario = FaultScenario(
        name="flash-crowd",
        crash_rate=0.08,
        persistent_fraction=0.05,
        poison_heal_s=900.0,
        throttle_capacity=30,
        throttle_refill_per_s=1.0,
        straggler_rate=0.005,
    )
    policy = StreamingPlanner(profile, XAPIAN, exec_model).plan(
        arrival_rate_per_s=cfg.overload_base_rate_per_s,
        qos_sojourn_s=cfg.overload_qos_s,
    )
    serving_cfg = ServingConfig(qos_sojourn_s=cfg.overload_qos_s)

    # The admission cap holds the healthy in-flight level (a few batches'
    # worth of requests); the flash crowd pushes far past it, so the cap
    # binds exactly when windows would otherwise drown.
    admit_limit = 8 * policy.degree

    def protection_for(mode: str):
        if mode == "unprotected":
            return None
        admission = ConcurrencyLimitAdmission(limit=admit_limit)
        if mode == "admission":
            return ResiliencePolicy(admission=admission)
        return ResiliencePolicy(
            admission=admission,
            breakers=CircuitBreakerBank(
                n_domains=serving_cfg.fault_domains,
                rng=np.random.default_rng(cfg.seed),
                failure_threshold=3,
                recovery_s=60.0,
            ),
            # A mild boost: the planner already packs near the latency
            # knee, so brownout trades a little execution time for a
            # large cut in dispatches (and their crash exposure).
            brownout=BrownoutController(
                violation_threshold=0.02,
                backlog_threshold=serving_cfg.backlog_threshold,
                degree_boost=1.25,
            ),
        )

    for mode in ("unprotected", "admission", "full"):
        controller = OnlineReplanner(
            profile, XAPIAN, exec_model, qos_sojourn_s=cfg.overload_qos_s
        )
        simulator = ServingSimulator(
            profile,
            XAPIAN,
            exec_model,
            pool=WarmPool(FixedTTL(60.0)),
            config=serving_cfg,
            controller=controller,
            resilience=protection_for(mode),
            scenario=scenario,
            retry_policy=ExponentialBackoffRetry(max_retries=3),
            seed=cfg.seed,
        )
        run = simulator.run(process, policy, cfg.overload_horizon_s)
        assert run.conserved() and run.resilience.conserved()
        result.add(
            protection=mode,
            requests=run.n_requests,
            completed=run.n_completed,
            shed=run.n_shed,
            failed=run.n_failed,
            attainment_pct=100.0 * run.windowed_p99_attainment(),
            p99_s=run.p99_sojourn_s,
            usd_per_1k_completed=run.cost_per_completed_request_usd() * 1000,
            wasted_gb_s=run.resilience.wasted_gb_seconds,
            retries=run.resilience.retries,
            throttled=run.resilience.throttled_attempts,
            breaker_transitions=run.resilience.breaker_transitions,
            brownout_level=run.resilience.brownout_max_level,
            max_backlog=run.backlog.max_depth,
        )
    unprot = result.select(protection="unprotected")[0]
    full = result.select(protection="full")[0]
    result.notes.append(
        "full protection vs unprotected: windowed P99 attainment "
        f"{full['attainment_pct']:.1f}% vs {unprot['attainment_pct']:.1f}% at "
        f"${full['usd_per_1k_completed']:.4f} vs "
        f"${unprot['usd_per_1k_completed']:.4f} per 1k completed requests"
    )
    return result


#: Registry used by the CLI and the benchmark suite.
def selfhealing_storms(ctx: ExperimentContext) -> FigureResult:
    """SH1 (ours) — self-healing vs hand-tuned vs unprotected under storms.

    Two stormy fault scenarios — a domain-poisoning storm (correlated
    bursts with persistent poison) and a deep-poison storm (most crashes
    leave their domain persistently sick, with a slow heal) — are each
    served three ways with the same traffic and fault seed:

    * **unprotected** — the day-one config: generous admission, lazy
      breakers, nobody watching;
    * **hand-tuned** — a static config an operator who knew the storm in
      advance would pick (tight admission, twitchy breakers);
    * **self-healing** — the day-one config plus the closed-loop
      auto-remediation control plane (detect → propose → shadow-verify →
      apply with rollback).

    The acceptance claim: the loop beats unprotected on windowed P99
    attainment at equal-or-lower cost per completed request, and lands
    within ~10% of the hand-tuned config — operator-free gets most of the
    operator's win.
    """
    import numpy as np

    from repro.extensions.streaming import StreamingPolicy
    from repro.faults.retry import ExponentialBackoffRetry
    from repro.faults.scenario import FaultScenario
    from repro.platform.providers import GOOGLE_CLOUD_FUNCTIONS
    from repro.remediation import RemediationConfig, RemediationLoop
    from repro.resilience import (
        CircuitBreakerBank,
        ConcurrencyLimitAdmission,
        ResiliencePolicy,
    )
    from repro.serving import (
        FixedTTL,
        PoissonProcess,
        ServingConfig,
        ServingSimulator,
        WarmPool,
    )

    cfg = ctx.config
    profile = GOOGLE_CLOUD_FUNCTIONS
    exec_model = ctx.propack().exec_model(XAPIAN)
    serving_cfg = ServingConfig(qos_sojourn_s=cfg.selfheal_qos_s)
    result = FigureResult(
        "SH1",
        (
            f"Self-healing serving for {XAPIAN.name} on {profile.name} "
            f"(horizon={cfg.selfheal_horizon_s:g}s, rate="
            f"{cfg.selfheal_rate_per_s:g}/s, QoS p99 <= "
            f"{cfg.selfheal_qos_s:g}s)"
        ),
        [
            "scenario", "mode", "requests", "completed", "shed", "failed",
            "attainment_pct", "p99_s", "usd_per_1k_completed",
            "detections", "applied", "rollbacks",
        ],
    )

    scenarios = [
        FaultScenario(
            name="poison-storm",
            crash_rate=0.05,
            correlated_bursts=2,
            correlated_fraction=0.5,
            correlated_window_s=120.0,
            persistent_fraction=0.5,
            poison_heal_s=600.0,
            straggler_rate=0.01,
        ),
        FaultScenario(
            name="deep-poison",
            crash_rate=0.06,
            correlated_bursts=1,
            correlated_fraction=0.6,
            correlated_window_s=180.0,
            persistent_fraction=0.7,
            poison_heal_s=900.0,
            straggler_rate=0.01,
        ),
    ]

    def resilience_for(mode):
        if mode == "hand-tuned":
            # The operator who saw the storm coming: tight admission and
            # twitchy breakers that evict bad domains fast.
            return ResiliencePolicy(
                admission=ConcurrencyLimitAdmission(
                    limit=cfg.selfheal_handtuned_limit
                ),
                breakers=CircuitBreakerBank(
                    n_domains=serving_cfg.fault_domains,
                    rng=np.random.default_rng(cfg.seed),
                    failure_threshold=2,
                    recovery_s=90.0,
                ),
            )
        # Day-one config shared by "unprotected" and "self-healing".
        return ResiliencePolicy(
            admission=ConcurrencyLimitAdmission(
                limit=cfg.selfheal_admission_limit
            ),
            breakers=CircuitBreakerBank(
                n_domains=serving_cfg.fault_domains,
                rng=np.random.default_rng(cfg.seed),
                failure_threshold=5,
                recovery_s=45.0,
            ),
        )

    for scenario in scenarios:
        for mode in ("unprotected", "hand-tuned", "self-healing"):
            remediation = None
            if mode == "self-healing":
                remediation = RemediationLoop(RemediationConfig(
                    tick_interval_s=cfg.selfheal_tick_interval_s,
                    shadow_horizon_s=cfg.selfheal_shadow_horizon_s,
                ))
            simulator = ServingSimulator(
                profile,
                XAPIAN,
                exec_model,
                pool=WarmPool(FixedTTL(120.0)),
                config=serving_cfg,
                resilience=resilience_for(mode),
                scenario=scenario,
                retry_policy=ExponentialBackoffRetry(max_retries=3),
                seed=cfg.seed,
                remediation=remediation,
            )
            run = simulator.run(
                PoissonProcess(cfg.selfheal_rate_per_s),
                StreamingPolicy(degree=4, batch_timeout_s=2.0),
                cfg.selfheal_horizon_s,
            )
            assert run.conserved() and run.resilience.conserved()
            report = run.remediation
            result.add(
                scenario=scenario.name,
                mode=mode,
                requests=run.n_requests,
                completed=run.n_completed,
                shed=run.n_shed,
                failed=run.n_failed,
                attainment_pct=100.0 * run.windowed_p99_attainment(),
                p99_s=run.p99_sojourn_s,
                usd_per_1k_completed=(
                    run.cost_per_completed_request_usd() * 1000
                ),
                detections=0 if report is None else report.n_detections,
                applied=0 if report is None else report.n_applied,
                rollbacks=0 if report is None else report.n_rollbacks,
            )
    for scenario in scenarios:
        unprot = result.select(scenario=scenario.name, mode="unprotected")[0]
        tuned = result.select(scenario=scenario.name, mode="hand-tuned")[0]
        healed = result.select(scenario=scenario.name, mode="self-healing")[0]
        result.notes.append(
            f"{scenario.name}: self-healing "
            f"{healed['attainment_pct']:.1f}% vs unprotected "
            f"{unprot['attainment_pct']:.1f}% vs hand-tuned "
            f"{tuned['attainment_pct']:.1f}% attainment at "
            f"${healed['usd_per_1k_completed']:.4f} / "
            f"${unprot['usd_per_1k_completed']:.4f} / "
            f"${tuned['usd_per_1k_completed']:.4f} per 1k completed "
            f"({healed['applied']} actions, {healed['rollbacks']} rollbacks)"
        )
    return result


def chaos_worst_storm(ctx: ExperimentContext) -> FigureResult:
    """CH1 (ours) — protected vs unprotected serving under the worst storm.

    A seeded adversarial search (:mod:`repro.chaos.search`) attacks the
    *unprotected* serving loop with multi-phase storms composed from the
    fault primitives plus the gray-failure model, shrinks the best
    SLO-breaking storm to a minimal reproducing scenario, and this figure
    then serves that minimized storm twice with identical traffic and
    fault seeds:

    * **unprotected** — no admission control, no breakers;
    * **protected** — concurrency-limit admission plus per-domain circuit
      breakers.

    Both runs execute with the online invariant auditor attached; the
    figure asserts zero violations (the chaos harness must never flag the
    real engine) on top of exact request conservation.

    The acceptance claim: the search finds at least one storm that breaks
    the SLO floor unprotected, and protection recovers attainment at
    equal-or-lower cost per completed request under that same storm.
    """
    from repro.chaos.search import ChaosSearch, SearchConfig

    cfg = ctx.config
    result = FigureResult(
        "CH1",
        (
            f"Adversarial worst-storm serving (horizon="
            f"{cfg.chaos_horizon_s:g}s, rate={cfg.chaos_rate_per_s:g}/s, "
            f"SLO floor {cfg.chaos_slo_floor:g} windowed P99 attainment)"
        ),
        [
            "storm", "mode", "requests", "completed", "shed", "failed",
            "attainment_pct", "usd_per_1k_completed", "crashes",
            "breaker_opens", "audit_events", "violations",
        ],
    )

    search_cfg = SearchConfig(
        seed=cfg.seed,
        rounds=cfg.chaos_search_rounds,
        population=cfg.chaos_search_population,
        horizon_s=cfg.chaos_horizon_s,
        rate_per_s=cfg.chaos_rate_per_s,
        protected=False,
        slo_attainment_floor=cfg.chaos_slo_floor,
        shrink_budget=cfg.chaos_shrink_budget,
    )
    search = ChaosSearch(search_cfg)
    report = search.run()
    assert report.found_failure, "chaos search found no SLO-breaking storm"
    storm = report.minimized.spec
    result.notes.append(
        f"search: {report.evaluations} evaluations, "
        f"{len(report.coverage)} coverage features; minimized storm: "
        f"{storm.describe()}"
    )

    for mode in ("unprotected", "protected"):
        params = search.params_for(storm)
        params["protected"] = mode == "protected"
        output = search.target.execute(
            search.target.resolve(params), search_cfg.seed
        )
        s = output.summary
        assert s["conserved"], f"{mode}: request conservation broke"
        assert s["violations"] == 0, (
            f"{mode}: invariant auditor flagged the engine: "
            f"{s['violation_kinds']}"
        )
        result.add(
            storm=storm.name,
            mode=mode,
            requests=s["requests"],
            completed=s["completed"],
            shed=s["shed"],
            failed=s["failed"],
            attainment_pct=100.0 * s["attainment"],
            usd_per_1k_completed=s["usd_per_1k_completed"],
            crashes=s["crashes"],
            breaker_opens=s["breaker_opens"],
            audit_events=s["audit_events"],
            violations=s["violations"],
        )

    unprot = result.select(mode="unprotected")[0]
    prot = result.select(mode="protected")[0]
    result.notes.append(
        f"{storm.name}: protected {prot['attainment_pct']:.1f}% vs "
        f"unprotected {unprot['attainment_pct']:.1f}% attainment at "
        f"${prot['usd_per_1k_completed']:.4f} / "
        f"${unprot['usd_per_1k_completed']:.4f} per 1k completed; "
        f"auditor clean over "
        f"{prot['audit_events'] + unprot['audit_events']} events"
    )
    return result


def fusion_comparison(ctx: ExperimentContext) -> FigureResult:
    """FU1 (ours) — user-side ProPack vs platform-side fusion vs both.

    One multi-tenant mixed-app demand set (``repro.fusion.MIXES``) is
    deployed three ways on the same seeded shared datacenter:

    * **propack** — every tenant packs their own clones at their Eq. 7
      degree; no cross-app or cross-tenant sharing (the user-side
      baseline, i.e. the paper as published);
    * **fusion** — functions arrive unpacked and the platform builds
      fusion groups from scratch;
    * **both** — user-side degrees first, then the platform merges the
      underfull remainder groups across apps and tenants.

    Each deployment runs once at burst scale and once at serving scale,
    and the *same* run is billed twice post-hoc: exact per-ms metering
    and the legacy coarse schedule (100 ms granularity + 100 ms minimum
    billed duration) — dynamics are billing-independent, so the service
    columns within a (scale, mode) pair are identical by construction.

    The acceptance claim: under rounded billing, platform-side fusion on
    top of ProPack (``both``) is strictly cheaper per 1k functions than
    user-side ProPack alone at every scale, with zero constraint
    violations and an auditor-clean fairness ledger (per-tenant
    conservation and exact billing attribution).
    """
    from repro.chaos.invariants import assert_fleet_invariants
    from repro.fusion import FUSION_MODES, FusedFleet, mix_demands
    from repro.fusion.scheduler import rebill
    from repro.platform.providers import PROVIDERS
    from repro.workloads import ALL_APPS

    cfg = ctx.config
    result = FigureResult(
        "FU1",
        (
            f"Platform-side fusion vs user-side ProPack "
            f"(mix={cfg.fusion_mix}, rounding={cfg.fusion_granularity_s:g}s, "
            f"min billed={cfg.fusion_min_billed_s:g}s)"
        ),
        [
            "scale", "mode", "billing", "functions", "instances",
            "fused_instances", "merges", "service_s", "expense_usd",
            "usd_per_1k_functions", "violations",
        ],
    )

    exact_profile = PROVIDERS["aws-lambda"]
    rounded_profile = exact_profile.with_overrides(
        billing_granularity_s=cfg.fusion_granularity_s,
        min_billed_duration_s=cfg.fusion_min_billed_s,
    )

    scales = (
        ("burst", cfg.fusion_burst_scale),
        ("serving", cfg.fusion_serving_scale),
    )
    for scale_label, scale in scales:
        for mode in FUSION_MODES:
            # The planner sees the rounded schedule (that is the regime
            # where consolidation saves rounding losses per invocation).
            fleet = FusedFleet(rounded_profile, seed=cfg.fusion_seed)
            for tenant, app, count in mix_demands(cfg.fusion_mix, scale):
                fleet.submit(tenant, ALL_APPS[app], count)
            run = fleet.run(mode)
            assert_fleet_invariants(run)
            assert not run.constraint_violations, run.constraint_violations

            for billing, report in (
                ("rounded-100ms", run.report),
                ("exact", rebill(run.report, exact_profile)),
            ):
                result.add(
                    scale=scale_label,
                    mode=mode,
                    billing=billing,
                    functions=report.plan.n_functions,
                    instances=report.plan.n_instances,
                    fused_instances=report.plan.fused_instances,
                    merges=run.decision.merges,
                    service_s=report.service_time,
                    expense_usd=report.expense_usd,
                    usd_per_1k_functions=report.usd_per_1k_functions(),
                    violations=len(run.constraint_violations),
                )

    for scale_label, _ in scales:
        propack = result.select(
            scale=scale_label, mode="propack", billing="rounded-100ms"
        )[0]
        both = result.select(
            scale=scale_label, mode="both", billing="rounded-100ms"
        )[0]
        saved = improvement(
            propack["usd_per_1k_functions"], both["usd_per_1k_functions"]
        )
        assert saved > 0.0, (
            f"{scale_label}: platform-side fusion did not beat user-side "
            f"ProPack ({both['usd_per_1k_functions']:.4f} vs "
            f"{propack['usd_per_1k_functions']:.4f} usd/1k)"
        )
        result.notes.append(
            f"{scale_label} (scale={dict(scales)[scale_label]}): both is "
            f"{saved:.1f}% cheaper per 1k functions than user-side propack "
            f"under 100 ms-rounded billing "
            f"({both['instances']} vs {propack['instances']} instances, "
            f"{both['merges']} merges)"
        )
    result.notes.append(
        "all runs auditor-clean: tenant conservation, billing attribution, "
        "and fusion constraints verified per mode"
    )
    return result


ALL_FIGURES = {
    "fig1": fig1,
    "fig2": fig2,
    "fig4": fig4,
    "fig5a": fig5a,
    "fig5b": fig5b,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "validation": validation_chi2,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "fig16": fig16,
    "fig17": fig17,
    "fig18": fig18,
    "fig19": fig19,
    "fig20": fig20,
    "fig21": fig21,
    "ablation_models": ablation_model_families,
    "ablation_alternatives": ablation_alternatives,
    "ablation_mitigation": ablation_provider_mitigation,
    "ablation_skew": ablation_skew,
    "ablation_amortization": ablation_amortization,
    "ablation_rightsizing": ablation_rightsizing,
    "streaming": streaming_policies,
    "multitenant": multitenant_benefit,
    "decentralization": decentralization_matrix,
    "faults": fault_sweep,
    "serving": serving_day,
    "overload": overload_flashcrowd,
    "selfhealing": selfhealing_storms,
    "chaos": chaos_worst_storm,
    "fusion": fusion_comparison,
}
