"""Command-line entry point: ``python -m repro.experiments`` /
``propack-experiments``.

Examples::

    propack-experiments all               # every figure, full grids
    propack-experiments fig9 fig11        # selected figures
    propack-experiments all --quick       # reduced grids (fast)
    propack-experiments all --markdown --out results.md
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.runner import ExperimentContext
from repro.experiments.tables import render_all


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="propack-experiments",
        description="Regenerate the ProPack paper's evaluation figures.",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        default=[],
        help=f"figure ids ({', '.join(ALL_FIGURES)}) or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list figure ids")
    parser.add_argument("--quick", action="store_true", help="reduced grids")
    parser.add_argument("--seed", type=int, default=None, help="experiment seed")
    parser.add_argument("--markdown", action="store_true", help="emit markdown")
    parser.add_argument("--out", type=str, default=None, help="write to file")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for name, func in ALL_FIGURES.items():
            summary = (func.__doc__ or "").strip().splitlines()[0]
            print(f"{name:<24} {summary}")
        return 0
    if not args.figures:
        print("no figures requested (use 'all' or --list)", file=sys.stderr)
        return 2
    names = list(ALL_FIGURES) if "all" in args.figures else list(args.figures)
    unknown = [n for n in names if n not in ALL_FIGURES]
    if unknown:
        print(f"unknown figures: {', '.join(unknown)}", file=sys.stderr)
        return 2

    config = ExperimentConfig.quick() if args.quick else ExperimentConfig.full()
    if args.seed is not None:
        config = ExperimentConfig(**{**config.__dict__, "seed": args.seed})
    ctx = ExperimentContext(config=config)

    results = []
    for name in names:
        start = time.perf_counter()
        results.append(ALL_FIGURES[name](ctx))
        print(f"[{name} done in {time.perf_counter() - start:.1f}s]", file=sys.stderr)
    text = render_all(results, markdown=args.markdown)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
