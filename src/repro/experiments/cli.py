"""Command-line entry point: ``python -m repro.experiments`` /
``propack-experiments``.

Examples::

    propack-experiments all               # every figure, full grids
    propack-experiments fig9 fig11        # selected figures
    propack-experiments all --quick       # reduced grids (fast)
    propack-experiments all --markdown --out results.md
    propack-experiments all -q            # suppress progress diagnostics
"""

from __future__ import annotations

import argparse
import time
from typing import Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.runner import ExperimentContext
from repro.experiments.tables import render_all
from repro.telemetry.logging import add_verbosity_flags, echo, get_console_logger


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="propack-experiments",
        description="Regenerate the ProPack paper's evaluation figures.",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        default=[],
        help=f"figure ids ({', '.join(ALL_FIGURES)}) or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list figure ids")
    parser.add_argument("--quick", action="store_true", help="reduced grids")
    parser.add_argument("--seed", type=int, default=None, help="experiment seed")
    parser.add_argument("--markdown", action="store_true", help="emit markdown")
    parser.add_argument("--out", type=str, default=None, help="write to file")
    add_verbosity_flags(parser)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    log = get_console_logger(verbose=args.verbose, quiet=args.quiet)
    if args.list:
        for name, func in ALL_FIGURES.items():
            summary = (func.__doc__ or "").strip().splitlines()[0]
            echo(f"{name:<24} {summary}")
        return 0
    if not args.figures:
        log.error("no figures requested (use 'all' or --list)")
        return 2
    names = list(ALL_FIGURES) if "all" in args.figures else list(args.figures)
    unknown = [n for n in names if n not in ALL_FIGURES]
    if unknown:
        log.error("unknown figures: %s", ", ".join(unknown))
        return 2

    config = ExperimentConfig.quick() if args.quick else ExperimentConfig.full()
    if args.seed is not None:
        config = ExperimentConfig(**{**config.__dict__, "seed": args.seed})
    ctx = ExperimentContext(config=config)

    results = []
    for name in names:
        start = time.perf_counter()
        results.append(ALL_FIGURES[name](ctx))
        log.info("[%s done in %.1fs]", name, time.perf_counter() - start)
    text = render_all(results, markdown=args.markdown)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        log.info("wrote %s", args.out)
    else:
        echo(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
