"""Fault scenarios: deterministic, seed-reproducible failure environments.

The seed models only i.i.d. per-attempt crashes with a fixed retry count.
Real platforms misbehave in richer ways — the overheads characterized in
*The High Cost of Keeping Warm* and the billing-for-failed-work semantics
in *Demystifying Serverless Costs on Public Platforms*:

* **correlated crash bursts** — a rack/AZ event takes out a fraction of the
  in-flight instances at once, so packed bursts lose ``P×`` work per victim;
* **throttling** — a token-bucket admission limit rejects invocations above
  a concurrency quota (HTTP 429) with their own retry semantics;
* **stragglers** — a small fraction of instances draw a lognormal slowdown
  far beyond execution noise;
* **transient vs. persistent faults** — a transient crash succeeds on
  retry; a persistent one (poisoned input, corrupt layer) crashes every
  attempt of the same function group;
* **billed timeouts** — an attempt that hits ``max_execution_seconds`` is
  billed for the full cap (Lambda semantics), then retried;
* **gray failures** — slow-but-alive fault domains whose service rate is
  degraded by a fixed factor during a time window. A gray domain never
  crashes, so circuit breakers (which watch failures) and crash detectors
  stay silent while latency quietly drowns — the adversarial case the
  ``repro.chaos`` search exploits.

A :class:`FaultScenario` is a frozen description of all of these. It is
*pure configuration*: the randomness lives in dedicated
:class:`~repro.sim.randomness.RandomStreams` labels, so the same seed and
scenario always produce the identical fault schedule. Gray failures draw
no randomness at all (the degradation is a deterministic function of
domain and time), so enabling them never perturbs the draw sequence of an
otherwise-identical run.

Scenarios round-trip through validated JSON (:meth:`FaultScenario.to_dict`
/ :meth:`FaultScenario.from_dict`), so a storm embeds directly in a
:mod:`repro.harness` run manifest instead of being reconstructed ad hoc.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Any, Mapping, Optional

if TYPE_CHECKING:  # annotation-only imports (runtime would be cyclic)
    from repro.faults.injector import FaultInjector
    from repro.faults.throttle import TokenBucket
    from repro.sim.randomness import RandomStreams


@dataclass(frozen=True)
class FaultScenario:
    """Declarative description of one fault environment."""

    name: str = "custom"

    # --- independent crashes (overrides the profile's failure_rate) ---
    crash_rate: Optional[float] = None     # per-attempt crash probability
    persistent_fraction: float = 0.0       # fraction of crashes that poison
                                           # the function group (every retry
                                           # of that group crashes too)

    # --- correlated crash bursts ---
    correlated_bursts: int = 0             # number of burst events
    correlated_fraction: float = 0.0       # kill probability per in-flight
                                           # instance at each event
    correlated_window_s: float = 60.0      # events drawn uniform in [0, w]

    # --- token-bucket throttling (429-style admission control) ---
    throttle_capacity: Optional[int] = None  # burst tokens; None = off
    throttle_refill_per_s: float = 0.0       # sustained admissions per second
    throttle_max_retries: int = 8            # 429 retries before giving up
    throttle_backoff_s: float = 0.5          # base backoff between 429 retries

    # --- persistent-fault healing ---
    poison_heal_s: Optional[float] = None  # a poisoned fault domain recovers
                                           # after this long (None = never)
    initially_poisoned: tuple[int, ...] = ()  # fault domains poisoned from
                                              # t=0 (shadow replays seed this
                                              # with the live run's state)

    # --- stragglers ---
    straggler_rate: float = 0.0            # probability an attempt straggles
    straggler_mu: float = 1.2              # lognormal log-mean of the extra
    straggler_sigma: float = 0.4           # slowdown factor (median e^mu)

    # --- timeouts ---
    retry_timeouts: bool = True            # timed-out attempts are retried
                                           # (billed the full cap either way)

    # --- gray failures (slow-but-alive fault domains) ---
    gray_domains: tuple[int, ...] = ()     # fault domains degraded by the
                                           # gray window (empty = no grays)
    gray_slowdown: float = 1.0             # execution-time multiplier while
                                           # gray (1.0 = no degradation)
    gray_onset_s: float = 0.0              # degradation starts at this time
    gray_heal_s: Optional[float] = None    # degradation ends this long after
                                           # onset (None = never heals)

    def __post_init__(self) -> None:
        if self.crash_rate is not None and not 0.0 <= self.crash_rate < 1.0:
            raise ValueError("crash_rate must be in [0, 1)")
        if not 0.0 <= self.persistent_fraction <= 1.0:
            raise ValueError("persistent_fraction must be in [0, 1]")
        if self.correlated_bursts < 0:
            raise ValueError("correlated_bursts must be non-negative")
        if not 0.0 <= self.correlated_fraction <= 1.0:
            raise ValueError("correlated_fraction must be in [0, 1]")
        if self.correlated_window_s <= 0.0:
            raise ValueError("correlated_window_s must be positive")
        if self.throttle_capacity is not None and self.throttle_capacity < 1:
            raise ValueError("throttle_capacity must be >= 1")
        if self.throttle_capacity is not None and self.throttle_refill_per_s <= 0.0:
            raise ValueError("throttling needs a positive refill rate")
        if self.throttle_max_retries < 0:
            raise ValueError("throttle_max_retries must be non-negative")
        if self.throttle_backoff_s < 0.0:
            raise ValueError("throttle_backoff_s must be non-negative")
        if self.poison_heal_s is not None and self.poison_heal_s <= 0.0:
            raise ValueError("poison_heal_s must be positive (or None)")
        if any(d < 0 for d in self.initially_poisoned):
            raise ValueError("initially_poisoned domains must be non-negative")
        if not 0.0 <= self.straggler_rate <= 1.0:
            raise ValueError("straggler_rate must be in [0, 1]")
        if self.straggler_sigma < 0.0:
            raise ValueError("straggler_sigma must be non-negative")
        object.__setattr__(
            self, "gray_domains", tuple(int(d) for d in self.gray_domains)
        )
        if any(d < 0 for d in self.gray_domains):
            raise ValueError("gray_domains must be non-negative")
        if self.gray_slowdown < 1.0:
            raise ValueError("gray_slowdown must be >= 1.0 (1.0 = off)")
        if self.gray_onset_s < 0.0:
            raise ValueError("gray_onset_s must be non-negative")
        if self.gray_heal_s is not None and self.gray_heal_s <= 0.0:
            raise ValueError("gray_heal_s must be positive (or None)")

    # ------------------------------------------------------------------ #
    @property
    def throttled(self) -> bool:
        return self.throttle_capacity is not None

    def effective_crash_rate(self, profile_rate: float) -> float:
        """The i.i.d. crash rate: the scenario's, else the profile's."""
        return profile_rate if self.crash_rate is None else self.crash_rate

    @property
    def gray_active(self) -> bool:
        return bool(self.gray_domains) and self.gray_slowdown > 1.0

    def gray_factor(self, domain: Optional[int], now: float) -> float:
        """Execution-time multiplier for a dispatch routed at ``domain``.

        Deterministic and draw-free: a gray domain slows every attempt by
        ``gray_slowdown`` inside ``[onset, onset + heal)`` and is healthy
        outside it. Crash detectors and breakers never see a gray domain —
        the attempts *succeed*, just late.
        """
        if domain is None or not self.gray_active:
            return 1.0
        if domain not in self.gray_domains:
            return 1.0
        if now < self.gray_onset_s:
            return 1.0
        if self.gray_heal_s is not None and now >= (
            self.gray_onset_s + self.gray_heal_s
        ):
            return 1.0
        return self.gray_slowdown

    def build_injector(
        self, streams: "RandomStreams", profile_failure_rate: float = 0.0
    ) -> "FaultInjector":
        """Bind this scenario to a run's RNG streams.

        The one construction site for :class:`~repro.faults.injector.FaultInjector`
        (previously copy-pasted by every dispatch loop; now called by
        :class:`~repro.engine.kernel.DispatchKernel`).
        """
        from repro.faults.injector import FaultInjector  # avoid import cycle

        return FaultInjector(self, streams, profile_failure_rate)

    def build_throttle(self) -> "Optional[TokenBucket]":
        """The scenario's 429 admission bucket, or None when not throttled."""
        from repro.faults.throttle import TokenBucket  # avoid import cycle

        if not self.throttled:
            return None
        return TokenBucket(self.throttle_capacity, self.throttle_refill_per_s)

    def describe(self) -> str:
        """One line per active fault model (for experiment logs)."""
        parts = [self.name]
        for f in fields(self):
            if f.name == "name":
                continue
            value = getattr(self, f.name)
            if value != f.default:
                parts.append(f"{f.name}={value}")
        return " ".join(parts)

    # ------------------------------------------------------------------ #
    # Validated JSON round-trip (storms embed in harness manifests)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """JSON-safe dict: tuples become lists, every field included."""
        doc: dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            doc[f.name] = list(value) if isinstance(value, tuple) else value
        return doc

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultScenario":
        """Rebuild a scenario, rejecting unknown keys and invalid values.

        Validation is the constructor's (`__post_init__`): negative rates,
        out-of-range probabilities, and inconsistent throttle settings all
        raise ``ValueError`` — a corrupted manifest cannot round-trip into
        a silently-different storm.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown FaultScenario keys: {sorted(unknown)}")
        data = dict(payload)
        for key in ("initially_poisoned", "gray_domains"):
            if key in data:
                value = data[key]
                if not isinstance(value, (list, tuple)):
                    raise ValueError(f"{key} must be a list of domain ids")
                data[key] = tuple(int(d) for d in value)
        return cls(**data)


#: No injected faults beyond the profile's own failure_rate.
CALM = FaultScenario(name="calm")

#: Elevated independent crashes with a small poisoned tail.
FLAKY = FaultScenario(name="flaky", crash_rate=0.15, persistent_fraction=0.02)

#: A correlated infrastructure event mid-burst plus stragglers.
STORMY = FaultScenario(
    name="stormy",
    crash_rate=0.05,
    correlated_bursts=2,
    correlated_fraction=0.3,
    correlated_window_s=40.0,
    straggler_rate=0.03,
)

#: Account-level concurrency quota: admission throttling dominates.
THROTTLED = FaultScenario(
    name="throttled",
    throttle_capacity=500,
    throttle_refill_per_s=100.0,
)

SCENARIOS: dict[str, FaultScenario] = {
    s.name: s for s in (CALM, FLAKY, STORMY, THROTTLED)
}
