"""Fault injection and resilience for the platform simulation.

* :mod:`~repro.faults.scenario` — declarative fault environments
  (correlated crash bursts, throttling, stragglers, persistent faults,
  billed timeouts) with presets.
* :mod:`~repro.faults.injector` — deterministic per-burst fault draws on
  dedicated RNG streams.
* :mod:`~repro.faults.retry` — pluggable retry policies (immediate, fixed
  delay, exponential backoff with decorrelated jitter, burst-wide retry
  budgets) and straggler hedging.
* :mod:`~repro.faults.throttle` — token-bucket admission control.
"""

from repro.faults.injector import CrashDecision, FaultInjector
from repro.faults.retry import (
    ExponentialBackoffRetry,
    FixedDelayRetry,
    HedgePolicy,
    ImmediateRetry,
    RetryBudget,
    RetryPolicy,
    retry_policy_from_dict,
    retry_policy_to_dict,
)
from repro.faults.scenario import (
    CALM,
    FLAKY,
    SCENARIOS,
    STORMY,
    THROTTLED,
    FaultScenario,
)
from repro.faults.throttle import TokenBucket

__all__ = [
    "FaultScenario",
    "FaultInjector",
    "CrashDecision",
    "RetryPolicy",
    "ImmediateRetry",
    "FixedDelayRetry",
    "ExponentialBackoffRetry",
    "RetryBudget",
    "HedgePolicy",
    "retry_policy_to_dict",
    "retry_policy_from_dict",
    "TokenBucket",
    "CALM",
    "FLAKY",
    "STORMY",
    "THROTTLED",
    "SCENARIOS",
]
