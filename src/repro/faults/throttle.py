"""Token-bucket admission control (429-style invocation throttling).

Providers cap the rate at which an account can launch new instances; above
the quota the control plane rejects invocations with HTTP 429 and the
client retries with backoff. The bucket is pure arithmetic — tokens refill
continuously as a function of elapsed simulation time — so it adds no
events of its own and stays bit-deterministic.
"""

from __future__ import annotations


class TokenBucket:
    """A continuous-refill token bucket keyed to an external clock."""

    def __init__(self, capacity: int, refill_per_s: float) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if refill_per_s <= 0.0:
            raise ValueError("refill rate must be positive")
        self.capacity = capacity
        self.refill_per_s = refill_per_s
        self._tokens = float(capacity)
        self._last = 0.0
        self.admitted = 0
        self.rejected = 0

    def _refill(self, now: float) -> None:
        if now < self._last:
            raise ValueError("token bucket clock moved backwards")
        self._tokens = min(
            float(self.capacity),
            self._tokens + (now - self._last) * self.refill_per_s,
        )
        self._last = now

    def available(self, now: float) -> float:
        """Tokens available at ``now`` without consuming any."""
        self._refill(now)
        return self._tokens

    def try_acquire(self, now: float) -> bool:
        """Admit one invocation at time ``now`` if a token is available."""
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.admitted += 1
            return True
        self.rejected += 1
        return False

    def seconds_until_token(self, now: float) -> float:
        """Time from ``now`` until one token will be available."""
        self._refill(now)
        if self._tokens >= 1.0:
            return 0.0
        return (1.0 - self._tokens) / self.refill_per_s
