"""Pluggable retry policies and speculative (hedged) re-execution.

The seed hard-coded Lambda's "retry immediately, up to ``max_retries``
times" loop inside the invoker. Real deployments choose among retry
disciplines with very different cost/latency trades, especially when a
crash of a packed instance re-pays ``P×`` work:

* :class:`ImmediateRetry` — the platform default (what Lambda's async
  invoke does); reproduces the seed's behaviour exactly.
* :class:`FixedDelayRetry` — a constant pause before each retry.
* :class:`ExponentialBackoffRetry` — exponential backoff with
  *decorrelated jitter* (``sleep = min(cap, uniform(base, 3·prev))``), the
  discipline AWS recommends for contended retries.
* :class:`RetryBudget` — wraps any policy and caps the *total* number of
  retries spent across a whole burst, so a correlated failure storm cannot
  multiply costs unboundedly.

:class:`HedgePolicy` configures straggler hedging: when an attempt runs
past ``trigger_factor ×`` the modeled execution time, a speculative
duplicate is launched; the first copy to finish wins and the loser is
cancelled (its elapsed time is still billed — the provider does not refund
abandoned work).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Mapping, Optional

import numpy as np


class RetryPolicy(abc.ABC):
    """Decides whether (and when) a failed attempt is retried."""

    @abc.abstractmethod
    def next_delay(
        self,
        failed_attempt: int,
        prev_delay: float,
        rng: np.random.Generator,
    ) -> Optional[float]:
        """Delay in seconds before the next attempt, or ``None`` to give up.

        ``failed_attempt`` is the 1-based index of the attempt that just
        failed; ``prev_delay`` is the delay that preceded it (0.0 for the
        first attempt), which decorrelated jitter feeds back on.
        """

    def fresh(self) -> "RetryPolicy":
        """A per-burst copy; stateless policies return themselves."""
        return self


@dataclass(frozen=True)
class ImmediateRetry(RetryPolicy):
    """Retry instantly, up to ``max_retries`` times (Lambda async default)."""

    max_retries: int = 2

    def next_delay(
        self, failed_attempt: int, prev_delay: float, rng: np.random.Generator
    ) -> Optional[float]:
        return 0.0 if failed_attempt <= self.max_retries else None


@dataclass(frozen=True)
class FixedDelayRetry(RetryPolicy):
    """A constant pause before every retry."""

    delay_s: float = 1.0
    max_retries: int = 2

    def __post_init__(self) -> None:
        if self.delay_s < 0.0:
            raise ValueError("delay_s must be non-negative")

    def next_delay(
        self, failed_attempt: int, prev_delay: float, rng: np.random.Generator
    ) -> Optional[float]:
        return self.delay_s if failed_attempt <= self.max_retries else None


@dataclass(frozen=True)
class ExponentialBackoffRetry(RetryPolicy):
    """Exponential backoff with decorrelated jitter.

    The k-th retry waits ``min(cap_s, uniform(base_s, 3·prev))`` where
    ``prev`` is the previous wait (``base_s`` initially) — the decorrelated
    jitter scheme, which de-synchronizes retry herds after a correlated
    failure burst far better than full or equal jitter.
    """

    base_s: float = 0.2
    cap_s: float = 20.0
    max_retries: int = 4

    def __post_init__(self) -> None:
        if self.base_s <= 0.0:
            raise ValueError("base_s must be positive")
        if self.cap_s < self.base_s:
            raise ValueError("cap_s must be >= base_s")

    def next_delay(
        self, failed_attempt: int, prev_delay: float, rng: np.random.Generator
    ) -> Optional[float]:
        if failed_attempt > self.max_retries:
            return None
        prev = max(prev_delay, self.base_s)
        return float(min(self.cap_s, rng.uniform(self.base_s, 3.0 * prev)))


class RetryBudget(RetryPolicy):
    """Caps total retries across a burst, on top of an inner policy.

    A packed instance crash re-pays ``P×`` work per retry, so a burst-wide
    budget bounds the worst-case retry spend of a failure storm: once
    ``budget`` retries have been granted, every further failure is final.
    """

    def __init__(self, inner: RetryPolicy, budget: int) -> None:
        if budget < 0:
            raise ValueError("budget must be non-negative")
        self.inner = inner
        self.budget = budget
        self._spent = 0

    @property
    def spent(self) -> int:
        return self._spent

    def next_delay(
        self, failed_attempt: int, prev_delay: float, rng: np.random.Generator
    ) -> Optional[float]:
        if self._spent >= self.budget:
            return None
        delay = self.inner.next_delay(failed_attempt, prev_delay, rng)
        if delay is not None:
            self._spent += 1
        return delay

    def fresh(self) -> "RetryBudget":
        return RetryBudget(self.inner.fresh(), self.budget)


# --------------------------------------------------------------------- #
# Validated JSON round-trip (policies embed in harness manifests)
# --------------------------------------------------------------------- #
#: kind tag -> (class, constructor-field names)
_RETRY_KINDS: dict[str, tuple[type, tuple[str, ...]]] = {
    "immediate": (ImmediateRetry, ("max_retries",)),
    "fixed-delay": (FixedDelayRetry, ("delay_s", "max_retries")),
    "exponential-backoff": (
        ExponentialBackoffRetry,
        ("base_s", "cap_s", "max_retries"),
    ),
}


def retry_policy_to_dict(policy: RetryPolicy) -> dict[str, Any]:
    """JSON-safe description of any built-in retry policy.

    ``RetryBudget`` nests its inner policy; runtime state (``spent``) is
    deliberately excluded — a round-tripped policy is always fresh.
    """
    if isinstance(policy, RetryBudget):
        return {
            "kind": "budget",
            "budget": policy.budget,
            "inner": retry_policy_to_dict(policy.inner),
        }
    for kind, (cls, field_names) in _RETRY_KINDS.items():
        if type(policy) is cls:
            return {"kind": kind, **{f: getattr(policy, f) for f in field_names}}
    raise ValueError(
        f"cannot serialize retry policy of type {type(policy).__name__}"
    )


def retry_policy_from_dict(payload: Mapping[str, Any]) -> RetryPolicy:
    """Rebuild a retry policy, rejecting unknown kinds/keys and invalid
    values (negative delays, ``cap_s < base_s``, …) via the constructors."""
    data = dict(payload)
    kind = data.pop("kind", None)
    if kind == "budget":
        inner = data.pop("inner", None)
        budget = data.pop("budget", None)
        if data:
            raise ValueError(f"budget retry policy: unknown keys {sorted(data)}")
        if not isinstance(inner, Mapping) or budget is None:
            raise ValueError("budget retry policy needs 'inner' and 'budget'")
        return RetryBudget(retry_policy_from_dict(inner), int(budget))
    if kind not in _RETRY_KINDS:
        raise ValueError(
            f"unknown retry policy kind {kind!r} "
            f"(known: {', '.join(sorted(_RETRY_KINDS))}, budget)"
        )
    cls, field_names = _RETRY_KINDS[kind]
    unknown = set(data) - set(field_names)
    if unknown:
        raise ValueError(f"{kind} retry policy: unknown keys {sorted(unknown)}")
    return cls(**data)


@dataclass(frozen=True)
class HedgePolicy:
    """Speculative re-execution for straggler attempts.

    When an attempt's elapsed time passes ``trigger_factor ×`` the modeled
    (noise-free) execution time, one duplicate is launched through the full
    cold pipeline. The first copy to complete wins; the loser is cancelled
    and billed for its elapsed time only.
    """

    trigger_factor: float = 2.0
    max_hedges_per_group: int = 1

    def __post_init__(self) -> None:
        if self.trigger_factor <= 1.0:
            raise ValueError("trigger_factor must exceed 1.0")
        if self.max_hedges_per_group < 1:
            raise ValueError("max_hedges_per_group must be >= 1")

    def trigger_seconds(self, reference_seconds: float) -> float:
        return self.trigger_factor * reference_seconds
