"""Deterministic fault decisions for one burst.

The injector owns every random draw a :class:`~repro.faults.scenario.FaultScenario`
needs, on dedicated :class:`~repro.sim.randomness.RandomStreams` labels
(``fault.crash``, ``fault.straggler``, ``fault.correlated``). Because those
streams are independent of the execution-noise streams, enabling a fault
model never perturbs the timing draws of an otherwise-identical run — and
the same seed plus the same scenario always yields the identical fault
schedule (asserted by the chaos determinism tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.faults.scenario import FaultScenario
from repro.sim.randomness import RandomStreams

if TYPE_CHECKING:  # annotation-only import
    from repro.telemetry.metrics import MetricsRegistry


@dataclass(frozen=True)
class CrashDecision:
    """One attempt's crash verdict."""

    at_fraction: float     # crash point as a fraction of the execution
    persistent: bool       # poisons the function group (retries crash too)


class FaultInjector:
    """Draws fault events for one burst, deterministically from one seed."""

    def __init__(
        self,
        scenario: FaultScenario,
        rng: RandomStreams,
        profile_failure_rate: float = 0.0,
    ) -> None:
        self.scenario = scenario
        self.rng = rng
        self.crash_rate = scenario.effective_crash_rate(profile_failure_rate)
        self._metrics: Optional["MetricsRegistry"] = None

    def bind_metrics(self, registry: "MetricsRegistry") -> None:
        """Count the injector's fault draws in a telemetry metrics registry."""
        self._metrics = registry

    # ------------------------------------------------------------------ #
    def crash_decision(self, poisoned: bool = False) -> Optional[CrashDecision]:
        """Whether this attempt crashes, and where.

        ``poisoned`` attempts (persistent fault in the group) always crash;
        otherwise an independent Bernoulli draw at the effective crash rate.
        """
        stream = self.rng.stream("fault.crash")
        if poisoned:
            return self._count_crash(
                CrashDecision(at_fraction=float(stream.random()), persistent=True)
            )
        if self.crash_rate <= 0.0:
            return None
        if stream.random() >= self.crash_rate:
            return None
        at = float(stream.random())
        persistent = (
            self.scenario.persistent_fraction > 0.0
            and stream.random() < self.scenario.persistent_fraction
        )
        return self._count_crash(CrashDecision(at_fraction=at, persistent=persistent))

    def _count_crash(self, decision: CrashDecision) -> CrashDecision:
        if self._metrics is not None:
            self._metrics.counter(
                "propack_fault_crashes_total",
                help="Crash decisions drawn by the fault injector.",
                persistent="true" if decision.persistent else "false",
            ).inc()
        return decision

    def straggler_factor(self) -> float:
        """Multiplicative slowdown for one attempt (1.0 = not a straggler)."""
        s = self.scenario
        if s.straggler_rate <= 0.0:
            return 1.0
        stream = self.rng.stream("fault.straggler")
        if stream.random() >= s.straggler_rate:
            return 1.0
        if self._metrics is not None:
            self._metrics.counter(
                "propack_fault_stragglers_total",
                help="Straggler slowdowns drawn by the fault injector.",
            ).inc()
        # 1 + lognormal so a straggler is always strictly slower.
        return 1.0 + float(stream.lognormal(s.straggler_mu, s.straggler_sigma))

    def correlated_event_times(self) -> list[float]:
        """Relative times of the correlated crash events, sorted."""
        s = self.scenario
        if s.correlated_bursts <= 0 or s.correlated_fraction <= 0.0:
            return []
        stream = self.rng.stream("fault.correlated")
        times = stream.uniform(0.0, s.correlated_window_s, s.correlated_bursts)
        return sorted(float(t) for t in times)

    def correlated_kills(self, victims: int) -> list[bool]:
        """Per-victim kill verdicts for one correlated event."""
        stream = self.rng.stream("fault.correlated")
        draws = stream.random(victims)
        return [bool(d < self.scenario.correlated_fraction) for d in draws]
