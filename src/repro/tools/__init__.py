"""User-facing command-line tools."""
