"""CI perf-regression gate over the ``BENCH_*.json`` exports.

Compares a freshly benchmarked export against the committed baseline and
fails (exit 1) when any shared throughput key drops by more than the
tolerance (default 20%). Wall-time keys (``*_wall_s``, lower is better)
are reported for trend visibility but only gated when ``--wall-tolerance``
is given — CI runner wall clocks are far noisier than relative rates on
the same machine.

Usage (what the ``perf-smoke`` CI job runs on every PR)::

    cp BENCH_dispatch.json /tmp/baseline.json
    PYTHONPATH=src python -m pytest benchmarks/test_perf_primitives.py \
        -k "chain_throughput or c1e4"
    PYTHONPATH=src python -m repro.tools.perf_gate \
        /tmp/baseline.json BENCH_dispatch.json

Only keys present in *both* files are compared (a smoke run regenerates a
subset of the keys); ``--require`` makes specific keys mandatory in the
fresh export so a silently-skipped benchmark cannot pass the gate.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class GateVerdict:
    """One compared key: baseline vs fresh plus the gate's decision."""

    key: str
    baseline: float
    fresh: float
    ratio: float          # fresh / baseline
    failed: bool
    gated: bool           # False for informational-only (ungated wall) keys

    @property
    def is_wall(self) -> bool:
        return self.key.endswith("_wall_s")

    def line(self) -> str:
        arrow = "FAIL" if self.failed else ("ok  " if self.gated else "info")
        direction = "slower" if self.is_wall else "of baseline"
        pct = self.ratio * 100.0
        if self.is_wall:
            pct -= 100.0
            return (
                f"  [{arrow}] {self.key}: {self.baseline:g}s -> "
                f"{self.fresh:g}s ({pct:+.1f}% {direction})"
            )
        return (
            f"  [{arrow}] {self.key}: {self.baseline:g}/s -> "
            f"{self.fresh:g}/s ({pct:.1f}% {direction})"
        )


def compare(
    baseline: dict[str, float],
    fresh: dict[str, float],
    tolerance: float = 0.20,
    wall_tolerance: Optional[float] = None,
    require: tuple[str, ...] = (),
) -> tuple[list[GateVerdict], list[str]]:
    """Compare the two exports; returns (verdicts, hard errors).

    Throughput keys fail when ``fresh < baseline * (1 - tolerance)``;
    wall keys fail when ``fresh > baseline * (1 + wall_tolerance)`` and
    ``wall_tolerance`` was supplied. Keys listed in ``require`` must be
    present in ``fresh`` (missing => hard error).
    """
    errors = [f"required key {k!r} missing from fresh export"
              for k in require if k not in fresh]
    verdicts: list[GateVerdict] = []
    for key in sorted(set(baseline) & set(fresh)):
        base, new = float(baseline[key]), float(fresh[key])
        if base <= 0.0:
            errors.append(f"baseline key {key!r} is non-positive ({base!r})")
            continue
        ratio = new / base
        if key.endswith("_wall_s"):
            gated = wall_tolerance is not None
            failed = gated and ratio > 1.0 + wall_tolerance
        else:
            gated = True
            failed = ratio < 1.0 - tolerance
        verdicts.append(GateVerdict(key, base, new, ratio, failed, gated))
    return verdicts, errors


def run_gate(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.perf_gate", description=__doc__.splitlines()[0]
    )
    parser.add_argument("baseline", type=pathlib.Path,
                        help="committed BENCH_*.json baseline")
    parser.add_argument("fresh", type=pathlib.Path,
                        help="freshly generated BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="max fractional throughput drop (default 0.20)")
    parser.add_argument("--wall-tolerance", type=float, default=None,
                        help="gate *_wall_s keys at this fractional slowdown "
                             "(default: report only)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="KEY",
                        help="key that must exist in the fresh export "
                             "(repeatable)")
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())
    fresh = json.loads(args.fresh.read_text())
    verdicts, errors = compare(
        baseline, fresh,
        tolerance=args.tolerance,
        wall_tolerance=args.wall_tolerance,
        require=tuple(args.require),
    )

    print(f"perf gate: {args.fresh} vs baseline {args.baseline} "
          f"(tolerance {args.tolerance:.0%})")
    for v in verdicts:
        print(v.line())
    for err in errors:
        print(f"  [FAIL] {err}")
    if not verdicts and not errors:
        print("  [FAIL] no shared keys between baseline and fresh export")
        return 1

    failures = [v for v in verdicts if v.failed]
    if failures or errors:
        print(f"perf gate FAILED: {len(failures) + len(errors)} regression(s)")
        return 1
    print(f"perf gate passed: {len(verdicts)} key(s) within tolerance")
    return 0


def main() -> None:
    raise SystemExit(run_gate())


if __name__ == "__main__":
    main()
