"""``propack-plan`` — plan (and optionally execute) one packed burst.

Examples::

    propack-plan --app video --concurrency 5000
    propack-plan --app xapian --concurrency 5000 --qos-tail 30
    propack-plan --app sort --concurrency 2000 --platform funcx --execute
    propack-plan --app synthetic --base-seconds 60 --mem-mb 512 \\
                 --pressure 0.1 --concurrency 3000 --objective expense
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro.baselines.nopack import run_unpacked
from repro.core.propack import ProPack
from repro.funcx import funcx_profile
from repro.platform.base import ServerlessPlatform
from repro.platform.providers import PROVIDERS
from repro.telemetry.logging import add_verbosity_flags, echo, get_console_logger
from repro.workloads import ALL_APPS
from repro.workloads.synthetic import make_synthetic


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="propack-plan",
        description="Plan the optimal packing degree for a concurrent burst.",
    )
    parser.add_argument(
        "--app",
        required=True,
        help=f"one of {', '.join(ALL_APPS)} — or 'synthetic' with the "
        "--base-seconds/--mem-mb/--pressure knobs",
    )
    parser.add_argument("--concurrency", type=int, required=True)
    parser.add_argument(
        "--platform",
        default="aws-lambda",
        help=f"one of {', '.join(PROVIDERS)}, or 'funcx'",
    )
    parser.add_argument(
        "--objective", default="joint", choices=("joint", "service", "expense")
    )
    parser.add_argument("--w-s", type=float, default=0.5,
                        help="service-time weight for the joint objective")
    parser.add_argument("--qos-tail", type=float, default=None,
                        help="tail-latency QoS bound in seconds (joint only)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--execute", action="store_true",
                        help="also run the burst and report realized numbers")
    parser.add_argument("--json", action="store_true",
                        help="emit a machine-readable JSON document")
    # synthetic app knobs
    parser.add_argument("--base-seconds", type=float, default=60.0)
    parser.add_argument("--mem-mb", type=int, default=512)
    parser.add_argument("--pressure", type=float, default=0.1)
    add_verbosity_flags(parser)
    return parser


def _resolve_platform(name: str, seed: int) -> Optional[ServerlessPlatform]:
    if name == "funcx":
        return ServerlessPlatform(funcx_profile(), seed=seed)
    profile = PROVIDERS.get(name)
    if profile is None:
        return None
    return ServerlessPlatform(profile, seed=seed)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    log = get_console_logger(verbose=args.verbose, quiet=args.quiet)

    if args.app == "synthetic":
        app = make_synthetic(
            base_seconds=args.base_seconds,
            mem_mb=args.mem_mb,
            pressure_per_gb=args.pressure,
        )
    elif args.app in ALL_APPS:
        app = ALL_APPS[args.app]
    else:
        log.error("unknown app %r (try: %s, synthetic)",
                  args.app, ", ".join(ALL_APPS))
        return 2

    platform = _resolve_platform(args.platform, args.seed)
    if platform is None:
        log.error("unknown platform %r", args.platform)
        return 2

    propack = ProPack(platform)
    log.debug("planning %s C=%d on %s (objective=%s)",
              app.name, args.concurrency, platform.profile.name, args.objective)
    plan, qos = propack.plan(
        app,
        args.concurrency,
        objective=args.objective,
        w_s=args.w_s,
        qos_tail_bound_s=args.qos_tail,
    )
    profile = propack.interference_profile(app)

    if args.json:
        import json

        document = {
            "app": app.name,
            "platform": platform.profile.name,
            "concurrency": args.concurrency,
            "objective": plan.objective,
            "w_s": plan.w_s,
            "degree": plan.degree,
            "n_instances": plan.n_instances,
            "predicted_service_s": plan.predicted_service_s,
            "predicted_tail_s": plan.predicted_tail_s,
            "predicted_expense_usd": plan.predicted_expense_usd,
            "profiling_overhead_usd": profile.overhead_usd,
            "qos": (
                None
                if qos is None
                else {
                    "bound_s": qos.qos_bound_s,
                    "predicted_tail_s": qos.predicted_tail_s,
                    "feasible": qos.feasible,
                }
            ),
        }
        if args.execute:
            result = platform.run_burst(plan.burst_spec())
            baseline = run_unpacked(platform, app, args.concurrency)
            document["realized"] = {
                "service_s": result.service_time(),
                "expense_usd": result.expense.total_usd,
                "baseline_service_s": baseline.service_time(),
                "baseline_expense_usd": baseline.expense.total_usd,
            }
        echo(json.dumps(document, indent=2))
        return 0

    echo(f"app:                 {app.name}  (M_func={app.mem_mb} MB, "
         f"ET(1)~{profile.model.predict(1):.0f}s, alpha={profile.model.alpha:.3f})")
    echo(f"platform:            {platform.profile.name}")
    echo(f"concurrency:         {args.concurrency}")
    echo(f"objective:           {plan.objective} (W_S={plan.w_s:.2f}, "
         f"W_E={plan.w_e:.2f})")
    if qos is not None:
        status = "met" if qos.feasible else "INFEASIBLE"
        echo(f"qos tail bound:      {qos.qos_bound_s:.1f}s -> predicted "
              f"{qos.predicted_tail_s:.1f}s ({status})")
    echo(f"packing degree:      {plan.degree}  "
         f"({plan.n_instances} instances)")
    echo(f"predicted service:   {plan.predicted_service_s:.1f}s "
         f"(tail {plan.predicted_tail_s:.1f}s)")
    echo(f"predicted expense:   ${plan.predicted_expense_usd:.2f} "
         f"(+ ${profile.overhead_usd:.2f} one-time profiling)")

    if args.execute:
        result = platform.run_burst(plan.burst_spec())
        baseline = run_unpacked(platform, app, args.concurrency)
        echo("--- executed ---")
        echo(f"realized service:    {result.service_time():.1f}s "
              f"(baseline {baseline.service_time():.1f}s, "
              f"{100 * (1 - result.service_time() / baseline.service_time()):.0f}% better)")
        echo(f"realized expense:    ${result.expense.total_usd:.2f} "
              f"(baseline ${baseline.expense.total_usd:.2f}, "
              f"{100 * (1 - result.expense.total_usd / baseline.expense.total_usd):.0f}% better)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
