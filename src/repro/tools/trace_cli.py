"""``propack-trace`` — produce and inspect telemetry traces.

Subcommands::

    propack-trace demo --app sort --concurrency 500 --out trace.json
        Run one instrumented burst and write its Chrome trace (plus,
        optionally, Prometheus metrics and the JSONL event log).

    propack-trace summary trace.json
        Per-category span counts and per-phase duration statistics of a
        previously exported Chrome trace.

    propack-trace dump trace.json --category instance --limit 20
        The raw events, time-ordered, with optional category/name filters.

The demo subcommand is deterministic: the same ``--app/--concurrency/
--packing/--seed`` always writes a byte-identical trace file, which is
what the CI artifact step relies on.
"""

from __future__ import annotations

import argparse
import json
from typing import Optional, Sequence

from repro.telemetry.logging import add_verbosity_flags, echo, get_console_logger


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="propack-trace",
        description="Produce and inspect ProPack telemetry traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run one instrumented burst")
    demo.add_argument("--app", default="sort")
    demo.add_argument("--concurrency", type=int, default=500)
    demo.add_argument("--packing", type=int, default=4)
    demo.add_argument("--platform", default="aws-lambda")
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument("--out", default="trace.json",
                      help="Chrome trace output path")
    demo.add_argument("--metrics-out", default=None,
                      help="also write Prometheus text here")
    demo.add_argument("--events-out", default=None,
                      help="also write the JSONL event log here")
    add_verbosity_flags(demo)

    summary = sub.add_parser("summary", help="summarize a Chrome trace")
    summary.add_argument("trace", help="trace JSON path")
    add_verbosity_flags(summary)

    dump = sub.add_parser("dump", help="print raw trace events")
    dump.add_argument("trace", help="trace JSON path")
    dump.add_argument("--category", default=None, help="filter by cat")
    dump.add_argument("--name", default=None, help="filter by name substring")
    dump.add_argument("--limit", type=int, default=50)
    add_verbosity_flags(dump)
    return parser


# --------------------------------------------------------------------- #
def _load_trace(path: str) -> list[dict]:
    with open(path) as fh:
        document = json.load(fh)
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError(f"{path}: not a Chrome trace (no traceEvents list)")
    return events


def _run_demo(args, log) -> int:
    from repro.platform.base import ServerlessPlatform
    from repro.platform.invoker import BurstSpec
    from repro.platform.providers import PROVIDERS
    from repro.telemetry import TelemetryConfig
    from repro.workloads import ALL_APPS

    app = ALL_APPS.get(args.app)
    if app is None:
        log.error("unknown app %r (try: %s)", args.app, ", ".join(ALL_APPS))
        return 2
    profile = PROVIDERS.get(args.platform)
    if profile is None:
        log.error("unknown platform %r (try: %s)",
                  args.platform, ", ".join(PROVIDERS))
        return 2

    platform = ServerlessPlatform(
        profile, seed=args.seed, telemetry=TelemetryConfig()
    )
    spec = BurstSpec(
        app=app, concurrency=args.concurrency, packing_degree=args.packing
    )
    result = platform.run_burst(spec)
    session = platform.telemetry
    session.write_chrome_trace(args.out)
    log.info("wrote %s (%d instances, scaling time %.2fs)",
             args.out, result.n_instances, result.scaling_time)
    if args.metrics_out:
        with open(args.metrics_out, "w") as fh:
            fh.write(session.prometheus_text())
        log.info("wrote %s", args.metrics_out)
    if args.events_out:
        with open(args.events_out, "w") as fh:
            fh.write(session.events_jsonl())
        log.info("wrote %s", args.events_out)
    echo(f"instances:     {result.n_instances}")
    echo(f"scaling time:  {result.scaling_time:.2f}s")
    echo(f"service time:  {result.service_time():.2f}s")
    echo(f"expense:       ${result.expense.total_usd:.2f}")
    return 0


def _run_summary(args, log) -> int:
    events = _load_trace(args.trace)
    complete = [e for e in events if e.get("ph") == "X"]
    instants = [e for e in events if e.get("ph") == "i"]
    processes = [e for e in events if e.get("ph") == "M"]

    echo(f"processes:     {len(processes)}")
    echo(f"spans:         {len(complete)}")
    echo(f"instants:      {len(instants)}")
    if complete:
        last_end = max(e["ts"] + e["dur"] for e in complete) / 1e6
        echo(f"trace end:     {last_end:.3f}s")
    by_cat: dict[str, list[dict]] = {}
    for event in complete:
        by_cat.setdefault(event.get("cat", "span"), []).append(event)
    for cat in sorted(by_cat):
        spans = by_cat[cat]
        durations = sorted(e["dur"] / 1e6 for e in spans)
        mean = sum(durations) / len(durations)
        echo(f"  {cat:<10} n={len(spans):<6} mean={mean:.4f}s "
             f"min={durations[0]:.4f}s max={durations[-1]:.4f}s")
    return 0


def _run_dump(args, log) -> int:
    events = _load_trace(args.trace)
    rows = [e for e in events if e.get("ph") in ("X", "i")]
    if args.category:
        rows = [e for e in rows if e.get("cat") == args.category]
    if args.name:
        rows = [e for e in rows if args.name in e.get("name", "")]
    rows.sort(key=lambda e: (e["ts"], e.get("tid", 0)))
    shown = rows[: args.limit] if args.limit > 0 else rows
    for event in shown:
        ts = event["ts"] / 1e6
        if event["ph"] == "X":
            dur = event["dur"] / 1e6
            echo(f"[{ts:12.6f}] {event.get('cat', ''):<10} "
                 f"{event['name']:<28} dur={dur:.6f}s tid={event.get('tid', 0)}")
        else:
            echo(f"[{ts:12.6f}] {event.get('cat', ''):<10} "
                 f"{event['name']:<28} (instant) tid={event.get('tid', 0)}")
    if len(rows) > len(shown):
        log.info("(%d more events; raise --limit)", len(rows) - len(shown))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    log = get_console_logger(verbose=args.verbose, quiet=args.quiet)
    if args.command == "demo":
        return _run_demo(args, log)
    if args.command == "summary":
        return _run_summary(args, log)
    return _run_dump(args, log)


if __name__ == "__main__":
    raise SystemExit(main())
