"""ProPack: the paper's primary contribution.

Pipeline (paper Fig. 3):

1. :mod:`~repro.core.profiler` — estimate performance interference by
   running one instance at a few sampled packing degrees, and estimate the
   platform's application-independent scaling behaviour with no-op probes.
2. :mod:`~repro.core.models` — fit the exponential execution-time model
   (Eq. 1) and the second-order-polynomial scaling-time model (Eq. 2).
3. :mod:`~repro.core.optimizer` — derive optimal packing degrees for
   service time (Eq. 3), expense (Eq. 4), or the joint regret objective
   (Eqs. 5–7); :mod:`~repro.core.qos` searches the objective weights under
   a tail-latency QoS bound (Eqs. 8–9).
4. :mod:`~repro.core.validation` — the Pearson χ² goodness-of-fit check of
   Sec. 2.4.
5. :mod:`~repro.core.propack` — the user-facing facade tying it together.
"""

from repro.core.models import ExecutionTimeModel, ScalingTimeModel, fit_model_family
from repro.core.optimizer import ExpenseModel, PackingOptimizer, ServiceTimeModel
from repro.core.persistence import load_models, save_models
from repro.core.planner import PackingPlan
from repro.core.profiler import InterferenceProfile, InterferenceProfiler, ScalingProfiler
from repro.core.propack import ProPack, ProPackOutcome
from repro.core.qos import QoSWeightSearch
from repro.core.reliability import FailurePenalty
from repro.core.validation import GoodnessOfFit, chi_square_statistic

__all__ = [
    "ExecutionTimeModel",
    "ScalingTimeModel",
    "fit_model_family",
    "ExpenseModel",
    "PackingOptimizer",
    "ServiceTimeModel",
    "PackingPlan",
    "InterferenceProfile",
    "InterferenceProfiler",
    "ScalingProfiler",
    "ProPack",
    "ProPackOutcome",
    "QoSWeightSearch",
    "FailurePenalty",
    "GoodnessOfFit",
    "chi_square_statistic",
    "save_models",
    "load_models",
]
