"""Packing plan: the optimizer's decision, ready to execute.

A plan records the chosen degree, the objective that chose it, the model's
predictions, and the memory-limit clamp the paper describes in Sec. 2.6
("if the optimal packing degree … is larger than the memory limit enforced
by the cloud provider … ProPack's packing degree can be modified to ensure
that it does not violate the memory limit — treating that as a constraint").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.optimizer import PackingOptimizer
from repro.platform.invoker import BurstSpec
from repro.workloads.base import AppSpec


@dataclass(frozen=True)
class PackingPlan:
    """An executable packing decision for one burst."""

    app: AppSpec
    concurrency: int
    degree: int
    objective: str
    w_s: float
    w_e: float
    predicted_service_s: float
    predicted_tail_s: float
    predicted_expense_usd: float
    provisioned_mb: int

    @property
    def n_instances(self) -> int:
        return math.ceil(self.concurrency / self.degree)

    def burst_spec(self) -> BurstSpec:
        return BurstSpec(
            app=self.app,
            concurrency=self.concurrency,
            packing_degree=self.degree,
            provisioned_mb=self.provisioned_mb,
        )


def build_plan(
    optimizer: PackingOptimizer,
    objective: str = "joint",
    w_s: float = 0.5,
    merit: str = "total",
    provisioned_mb: Optional[int] = None,
) -> PackingPlan:
    """Choose a degree under ``objective`` and wrap it as a plan.

    ``objective`` ∈ {"joint", "service", "expense"} — the three ProPack
    variants the paper evaluates (ProPack, ProPack (Service Time),
    ProPack (Expense)).
    """
    if objective == "service":
        degree, eff_ws = optimizer.optimal_service(merit), 1.0
    elif objective == "expense":
        degree, eff_ws = optimizer.optimal_expense(), 0.0
    elif objective == "joint":
        degree, eff_ws = optimizer.optimal_joint(w_s=w_s, merit=merit), w_s
    else:
        raise ValueError(f"unknown objective {objective!r}")

    # Memory-limit clamp (Sec. 2.6): never exceed what the provider allows.
    memory_cap = optimizer.app.max_packing_degree(optimizer.profile.max_memory_mb)
    degree = min(degree, memory_cap)

    provisioned = provisioned_mb or optimizer.profile.max_memory_mb
    return PackingPlan(
        app=optimizer.app,
        concurrency=optimizer.concurrency,
        degree=degree,
        objective=objective,
        w_s=eff_ws,
        w_e=1.0 - eff_ws,
        predicted_service_s=optimizer.service.predict(degree, merit="total"),
        predicted_tail_s=optimizer.service.predict(degree, merit="tail"),
        predicted_expense_usd=optimizer.expense.predict(degree),
        provisioned_mb=provisioned,
    )
