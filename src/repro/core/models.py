"""ProPack's analytical models.

Execution time vs. packing degree (paper Eq. 1)::

    ET(P) = exp(M_func · α · P)

fit in log space, so the model is ``A · exp(B · P)`` with ``B = M_func · α``
(the paper's formulation absorbs the scale ``A`` into the exponent; we keep
it explicit, which is the standard log-linear least-squares fit of the same
family).

Scaling time vs. effective concurrency (paper Eq. 2)::

    Scaling(C_eff) = β1 · C_eff² + β2 · C_eff − β3

fit by polynomial regression.

The paper notes (Sec. 2.2) that the authors "attempted several models like
linear, quadratic, cubic, exponential, logarithmic, logistic, normal, and
sinusoidal" before choosing these; :func:`fit_model_family` reproduces that
model-selection step and backs the model-family ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from scipy import optimize


@dataclass(frozen=True)
class ExecutionTimeModel:
    """``ET(P) = A · exp(B · P)`` — the paper's Eq. 1 family."""

    coeff_a: float
    coeff_b: float
    mem_gb: float

    @property
    def alpha(self) -> float:
        """The paper's α (interference constant): ``B = M_func · α``."""
        return self.coeff_b / self.mem_gb

    @classmethod
    def fit(
        cls,
        degrees: Sequence[int],
        times: Sequence[float],
        mem_gb: float,
    ) -> "ExecutionTimeModel":
        """Log-linear least squares over (degree, execution time) samples."""
        deg = np.asarray(degrees, dtype=float)
        t = np.asarray(times, dtype=float)
        if deg.size < 2:
            raise ValueError("need at least two packing-degree samples to fit")
        if np.any(t <= 0):
            raise ValueError("execution times must be positive")
        slope, intercept = np.polyfit(deg, np.log(t), 1)
        return cls(coeff_a=float(np.exp(intercept)), coeff_b=float(slope), mem_gb=mem_gb)

    def predict(self, degree: float) -> float:
        if degree < 1:
            raise ValueError("packing degree must be >= 1")
        return float(self.coeff_a * np.exp(self.coeff_b * degree))

    def predict_many(self, degrees: Sequence[float]) -> np.ndarray:
        deg = np.asarray(degrees, dtype=float)
        if np.any(deg < 1):
            raise ValueError("packing degrees must be >= 1")
        return self.coeff_a * np.exp(self.coeff_b * deg)

    def max_degree_within(self, latency_bound_s: float) -> int:
        """Largest degree whose predicted ET stays within ``latency_bound_s``.

        Implements the paper's latency/QoS constraint on ``P_max``
        (Sec. 2.1): packing is capped where the instance execution time
        would exceed the platform cap or a user latency target.
        """
        if latency_bound_s <= 0:
            raise ValueError("latency bound must be positive")
        if self.predict(1) > latency_bound_s:
            return 1
        if self.coeff_b <= 0:
            return np.iinfo(np.int32).max
        degree = int(np.floor((np.log(latency_bound_s) - np.log(self.coeff_a)) / self.coeff_b))
        return max(1, degree)


@dataclass(frozen=True)
class ScalingTimeModel:
    """``Scaling(C_eff) = β1·C_eff² + β2·C_eff − β3`` — the paper's Eq. 2."""

    beta1: float
    beta2: float
    beta3: float

    @classmethod
    def fit(
        cls, concurrencies: Sequence[float], scaling_times: Sequence[float]
    ) -> "ScalingTimeModel":
        c = np.asarray(concurrencies, dtype=float)
        s = np.asarray(scaling_times, dtype=float)
        if c.size < 3:
            raise ValueError("need at least three concurrency samples to fit")
        b1, b2, b0 = np.polyfit(c, s, 2)
        return cls(beta1=float(b1), beta2=float(b2), beta3=float(-b0))

    def predict(self, c_eff: float) -> float:
        """Predicted scaling time; floored at 0 (a tiny burst scales freely)."""
        if c_eff < 0:
            raise ValueError("effective concurrency must be non-negative")
        value = self.beta1 * c_eff**2 + self.beta2 * c_eff - self.beta3
        return float(max(0.0, value))

    def predict_many(self, c_effs: Sequence[float]) -> np.ndarray:
        c = np.asarray(c_effs, dtype=float)
        if np.any(c < 0):
            raise ValueError("effective concurrencies must be non-negative")
        return np.maximum(0.0, self.beta1 * c**2 + self.beta2 * c - self.beta3)


# --------------------------------------------------------------------- #
# Model-family selection (the paper's Sec. 2.2 comparison, reproduced).
# --------------------------------------------------------------------- #

def _safe_curve_fit(func, x, y, p0) -> tuple[np.ndarray, float]:
    import warnings

    with warnings.catch_warnings():
        # Degenerate fits (e.g. a 4-parameter sinusoid on 2 points) warn
        # about the covariance; we only use the SSE, so silence it.
        warnings.simplefilter("ignore", optimize.OptimizeWarning)
        params, _ = optimize.curve_fit(func, x, y, p0=p0, maxfev=20000)
    residuals = y - func(x, *params)
    return params, float(np.sum(residuals**2))


MODEL_FAMILIES: dict[str, Callable] = {
    "linear": lambda x, a, b: a * x + b,
    "quadratic": lambda x, a, b, c: a * x**2 + b * x + c,
    "cubic": lambda x, a, b, c, d: a * x**3 + b * x**2 + c * x + d,
    "exponential": lambda x, a, b: a * np.exp(np.clip(b * x, -50, 50)),
    "logarithmic": lambda x, a, b: a * np.log(x) + b,
    "logistic": lambda x, l, k, x0: l / (1.0 + np.exp(np.clip(-k * (x - x0), -50, 50))),
    "normal": lambda x, a, mu, sig: a * np.exp(-((x - mu) ** 2) / (2 * sig**2 + 1e-9)),
    "sinusoidal": lambda x, a, w, phi, c: a * np.sin(w * x + phi) + c,
}

_INITIAL_GUESSES: dict[str, Callable[[np.ndarray, np.ndarray], list[float]]] = {
    "linear": lambda x, y: [1.0, float(y.mean())],
    "quadratic": lambda x, y: [0.01, 1.0, float(y.mean())],
    "cubic": lambda x, y: [0.001, 0.01, 1.0, float(y.mean())],
    "exponential": lambda x, y: [float(max(y.min(), 1e-6)), 0.05],
    "logarithmic": lambda x, y: [1.0, float(y.mean())],
    "logistic": lambda x, y: [float(y.max() * 2), 0.2, float(x.mean())],
    "normal": lambda x, y: [float(y.max()), float(x.mean()), float(x.std() + 1.0)],
    "sinusoidal": lambda x, y: [float(y.std() + 1.0), 0.5, 0.0, float(y.mean())],
}


@dataclass(frozen=True)
class FamilyFit:
    """One candidate family's fit quality on a sample set."""

    family: str
    params: tuple[float, ...]
    sse: float

    def predict(self, x: Sequence[float]) -> np.ndarray:
        return np.asarray(
            MODEL_FAMILIES[self.family](np.asarray(x, dtype=float), *self.params)
        )


def fit_model_family(
    x: Sequence[float],
    y: Sequence[float],
    families: Sequence[str] = tuple(MODEL_FAMILIES),
) -> list[FamilyFit]:
    """Fit each candidate family; results sorted by SSE (best first).

    Families that fail to converge on the data are skipped — matching how a
    practitioner would discard them during model selection.
    """
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    fits: list[FamilyFit] = []
    for family in families:
        func = MODEL_FAMILIES[family]
        try:
            params, sse = _safe_curve_fit(func, xs, ys, _INITIAL_GUESSES[family](xs, ys))
        except (RuntimeError, TypeError, ValueError):
            continue
        if not np.all(np.isfinite(params)):
            continue
        fits.append(FamilyFit(family=family, params=tuple(map(float, params)), sse=sse))
    fits.sort(key=lambda f: f.sse)
    return fits
