"""QoS-aware weight search (paper Eqs. 8-9, Sec. 2.6).

For latency-critical applications (Xapian), the joint optimum with equal
weights may violate a tail-latency QoS bound. ProPack then shifts weight
toward the service-time objective: the tail service time at the
joint-optimal degree for weights ``(W_S, 1-W_S)`` is

    TS(W_S) = Tail(S(P_opt(W_S)))                                   (Eq. 8)

and ProPack chooses the weight

    W_S = argmin { TS(W_S, 1-W_S) | TS ≤ QoS }                      (Eq. 9)

i.e. among weights whose tail latency meets the bound, the *smallest* such
``W_S`` — giving the expense objective as much influence as the QoS bound
allows (more weight on service time than necessary would give up expense
savings for latency headroom the SLo does not require).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.optimizer import PackingOptimizer


@dataclass(frozen=True)
class QoSDecision:
    """Outcome of the weight search."""

    w_s: float
    w_e: float
    degree: int
    predicted_tail_s: float
    qos_bound_s: float
    feasible: bool


class QoSWeightSearch:
    """Grid search over ``W_S`` meeting a tail-latency QoS bound."""

    def __init__(
        self,
        optimizer: PackingOptimizer,
        step: float = 0.05,
        safety_margin: float = 0.04,
    ) -> None:
        """``safety_margin`` shrinks the bound the *predicted* tail must meet,
        leaving headroom for execution noise in the realized tail."""
        if not 0.0 < step <= 0.5:
            raise ValueError("step must be in (0, 0.5]")
        if not 0.0 <= safety_margin < 1.0:
            raise ValueError("safety margin must be in [0, 1)")
        self.optimizer = optimizer
        self.step = step
        self.safety_margin = safety_margin

    def tail_at_weight(self, w_s: float) -> tuple[int, float]:
        """(joint-optimal degree, predicted tail service time) at ``w_s``."""
        degree = self.optimizer.optimal_joint(w_s=w_s, merit="tail")
        tail = self.optimizer.service.predict(degree, merit="tail")
        return degree, tail

    def search(self, qos_bound_s: float) -> QoSDecision:
        """Eq. 9: smallest ``W_S`` whose predicted tail meets the bound.

        If no weight meets the bound, falls back to the weight with the
        lowest predicted tail (all-in on service time) and flags the
        decision infeasible so the caller can renegotiate the QoS.
        """
        if qos_bound_s <= 0:
            raise ValueError("QoS bound must be positive")
        effective_bound = qos_bound_s * (1.0 - self.safety_margin)
        weights = np.round(np.arange(0.0, 1.0 + 1e-9, self.step), 10)
        best_fallback: Optional[QoSDecision] = None
        for w_s in weights:
            degree, tail = self.tail_at_weight(float(w_s))
            decision = QoSDecision(
                w_s=float(w_s),
                w_e=float(1.0 - w_s),
                degree=degree,
                predicted_tail_s=tail,
                qos_bound_s=qos_bound_s,
                feasible=tail <= effective_bound,
            )
            if decision.feasible:
                return decision
            if best_fallback is None or tail < best_fallback.predicted_tail_s:
                best_fallback = decision
        assert best_fallback is not None
        return best_fallback
