"""Profiling: interference estimation and scaling estimation.

Interference (paper Sec. 2.1): run one function instance at a few sampled
packing degrees and record its execution time. The ET(P) curve is monotonic,
so ProPack skips alternate points — the paper evaluates 20, 8, and 15 sample
points for Video, Sort, and Stateless Cost, which is exactly every-other
degree up to each app's ``P_max`` (40, 15, 30). Runs can execute in parallel
because the profiling concurrency is far below the bottleneck regime.

Scaling (paper Sec. 2.2): spawn bursts of no-op probes at ~10 concurrency
samples and fit the polynomial. No application code runs; the model is fit
once per platform and reused by every application.

Both profilers account their own overhead (billed expense and wall time),
which the evaluation *includes* in ProPack's costs, as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.models import ExecutionTimeModel, ScalingTimeModel
from repro.platform.base import ServerlessPlatform
from repro.platform.invoker import BurstSpec, FunctionTimeoutError
from repro.workloads.base import AppSpec


def sample_degrees(max_degree: int) -> list[int]:
    """Every-other packing degree, always including 1 and ``max_degree``."""
    if max_degree < 1:
        raise ValueError("max degree must be >= 1")
    degrees = list(range(1, max_degree + 1, 2))
    if degrees[-1] != max_degree:
        degrees.append(max_degree)
    return degrees


@dataclass
class InterferenceProfile:
    """Observed (degree → execution time) samples plus the fitted model."""

    app_name: str
    degrees: list[int]
    exec_times: list[float]
    model: ExecutionTimeModel
    overhead_usd: float
    overhead_gb_seconds: float
    overhead_wall_s: float

    def observed(self) -> dict[int, float]:
        return dict(zip(self.degrees, self.exec_times))


class InterferenceProfiler:
    """Estimates an app's packing-interference curve on a platform."""

    def __init__(self, platform: ServerlessPlatform, repetitions: int = 1) -> None:
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        self.platform = platform
        self.repetitions = repetitions

    def profile(
        self, app: AppSpec, degrees: Optional[Sequence[int]] = None
    ) -> InterferenceProfile:
        """Run single instances at sampled degrees and fit Eq. 1."""
        max_degree = app.max_packing_degree(self.platform.profile.max_memory_mb)
        if degrees is None:
            degrees = sample_degrees(max_degree)
        usable: list[int] = []
        times: list[float] = []
        overhead_usd = 0.0
        overhead_gbs = 0.0
        overhead_wall = 0.0
        for degree in degrees:
            if degree > max_degree:
                raise ValueError(
                    f"degree {degree} exceeds {app.name}'s max packing degree "
                    f"{max_degree}"
                )
            samples = []
            for rep in range(self.repetitions):
                # One instance packing `degree` functions: concurrency ==
                # packing degree, far below the scalability bottleneck.
                spec = BurstSpec(
                    app=app, concurrency=degree, packing_degree=degree
                )
                try:
                    result = self.platform.run_burst(spec)
                except FunctionTimeoutError:
                    # The platform killed the instance; the paid time still
                    # counts toward overhead via the platform cap.
                    samples = []
                    overhead_wall += self.platform.profile.max_execution_seconds
                    break
                samples.append(result.mean_exec_seconds)
                overhead_usd += result.expense.total_usd
                overhead_gbs += (
                    result.mean_exec_seconds
                    * result.records[0].provisioned_mb
                    / 1024.0
                )
                overhead_wall += result.service_time()
            if samples:
                usable.append(degree)
                times.append(float(np.mean(samples)))
        model = ExecutionTimeModel.fit(usable, times, mem_gb=app.mem_gb)
        return InterferenceProfile(
            app_name=app.name,
            degrees=usable,
            exec_times=times,
            model=model,
            overhead_usd=overhead_usd,
            overhead_gb_seconds=overhead_gbs,
            overhead_wall_s=overhead_wall,
        )


@dataclass
class ScalingProfile:
    """Observed (concurrency → scaling time) samples plus the fitted model."""

    platform_name: str
    concurrencies: list[int]
    scaling_times: list[float]
    model: ScalingTimeModel
    overhead_wall_s: float

    def observed(self) -> dict[int, float]:
        return dict(zip(self.concurrencies, self.scaling_times))


#: Default probe grid: ten samples, log-ish spaced across the regime.
DEFAULT_SCALING_SAMPLES = (50, 100, 200, 400, 700, 1000, 1500, 2000, 3000, 4000)


class ScalingProfiler:
    """Fits the application-independent scaling model for one platform."""

    def __init__(self, platform: ServerlessPlatform) -> None:
        self.platform = platform

    def profile(
        self, concurrencies: Sequence[int] = DEFAULT_SCALING_SAMPLES
    ) -> ScalingProfile:
        observed: list[float] = []
        wall = 0.0
        for c in concurrencies:
            scaling = self.platform.measure_scaling_time(c)
            observed.append(scaling)
            wall += scaling
        model = ScalingTimeModel.fit(list(concurrencies), observed)
        return ScalingProfile(
            platform_name=self.platform.profile.name,
            concurrencies=list(concurrencies),
            scaling_times=observed,
            model=model,
            overhead_wall_s=wall,
        )
