"""Persisting fitted models across processes.

The paper amortizes profiling "over thousands of applications and runs" —
which, for a library, means fitted models must outlive the process.
:func:`save_models` / :func:`load_models` serialize a ProPack instance's
interference profiles and scaling profile to a JSON document keyed by
platform name, so a later session (or another machine) can plan without
re-profiling:

    propack = ProPack(platform)
    propack.run(VIDEO, 5000)
    save_models(propack, "models.json")

    later = ProPack(platform)
    load_models(later, "models.json")     # no profiling runs needed
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.core.models import ExecutionTimeModel, ScalingTimeModel
from repro.core.profiler import InterferenceProfile, ScalingProfile
from repro.core.propack import ProPack

FORMAT_VERSION = 1


def _profile_to_dict(profile: InterferenceProfile) -> dict:
    return {
        "app_name": profile.app_name,
        "degrees": profile.degrees,
        "exec_times": profile.exec_times,
        "model": {
            "coeff_a": profile.model.coeff_a,
            "coeff_b": profile.model.coeff_b,
            "mem_gb": profile.model.mem_gb,
        },
        "overhead_usd": profile.overhead_usd,
        "overhead_gb_seconds": profile.overhead_gb_seconds,
        "overhead_wall_s": profile.overhead_wall_s,
    }


def _profile_from_dict(data: dict) -> InterferenceProfile:
    return InterferenceProfile(
        app_name=data["app_name"],
        degrees=list(data["degrees"]),
        exec_times=list(data["exec_times"]),
        model=ExecutionTimeModel(**data["model"]),
        overhead_usd=data["overhead_usd"],
        overhead_gb_seconds=data["overhead_gb_seconds"],
        overhead_wall_s=data["overhead_wall_s"],
    )


def _scaling_to_dict(profile: ScalingProfile) -> dict:
    return {
        "platform_name": profile.platform_name,
        "concurrencies": profile.concurrencies,
        "scaling_times": profile.scaling_times,
        "model": {
            "beta1": profile.model.beta1,
            "beta2": profile.model.beta2,
            "beta3": profile.model.beta3,
        },
        "overhead_wall_s": profile.overhead_wall_s,
    }


def _scaling_from_dict(data: dict) -> ScalingProfile:
    return ScalingProfile(
        platform_name=data["platform_name"],
        concurrencies=list(data["concurrencies"]),
        scaling_times=list(data["scaling_times"]),
        model=ScalingTimeModel(**data["model"]),
        overhead_wall_s=data["overhead_wall_s"],
    )


def save_models(propack: ProPack, path: Union[str, Path]) -> None:
    """Write every fitted model the instance holds to ``path`` (JSON)."""
    document = {
        "format_version": FORMAT_VERSION,
        "platform": propack.platform.profile.name,
        "interference": {
            name: _profile_to_dict(profile)
            for name, profile in propack._interference_cache.items()
        },
        "scaling": (
            _scaling_to_dict(propack._scaling_profile)
            if propack._scaling_profile is not None
            else None
        ),
    }
    Path(path).write_text(json.dumps(document, indent=2))


def load_models(propack: ProPack, path: Union[str, Path]) -> None:
    """Populate a ProPack instance's model caches from ``path``.

    Refuses documents written for a *different platform* — the scaling
    model is platform-specific, and silently reusing it would corrupt every
    plan (interference profiles transfer poorly across instance shapes too).
    """
    document = json.loads(Path(path).read_text())
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported model-document version {version!r}")
    platform = document.get("platform")
    if platform != propack.platform.profile.name:
        raise ValueError(
            f"models were fitted on {platform!r}, not "
            f"{propack.platform.profile.name!r} — re-profile instead"
        )
    for name, data in document["interference"].items():
        propack._interference_cache[name] = _profile_from_dict(data)
    if document["scaling"] is not None:
        propack._scaling_profile = _scaling_from_dict(document["scaling"])
