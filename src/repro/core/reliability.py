"""Expected-value failure math for the planner.

Packing multiplies the blast radius of a crash: one failed instance loses
``P`` functions' worth of work and the retry re-pays the full cold pipeline
plus ``ET(P)`` seconds of execution. :class:`FailurePenalty` turns a
per-attempt crash probability ``q`` and a retry cap ``r`` into the expected
quantities the failure-aware service/expense models need.

With attempts capped at ``r + 1`` per function group:

* expected attempts      ``E[A] = (1 − q^{r+1}) / (1 − q)``
* expected failures      ``E[F] = q · (1 − q^{r+1}) / (1 − q)``
* success probability    ``p_ok = 1 − q^{r+1}``
* expected billed-time multiplier per group
  ``p_ok + E[F] / 2`` (a crash lands uniformly over the execution, so a
  failed attempt bills half an ``ET`` in expectation — and providers do
  bill failed attempts)
* expected *maximum* attempts over ``N`` independent groups
  ``E[max] = 1 + Σ_{k=1..r} (1 − (1 − q^k)^N)``
  (the burst's completion waits for its unluckiest group, so the service
  model uses the max, not the mean).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.platform.providers import PlatformProfile


@dataclass(frozen=True)
class FailurePenalty:
    """Expected retry cost of a failure environment.

    ``retry_overhead_s`` is the non-execution cost a retry re-pays (the
    placement + cold-pipeline latency of a fresh invocation) plus any
    backoff delay the retry policy inserts.
    """

    failure_rate: float
    max_retries: int
    retry_overhead_s: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_rate < 1.0:
            raise ValueError("failure_rate must be in [0, 1)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.retry_overhead_s < 0.0:
            raise ValueError("retry_overhead_s must be non-negative")

    @classmethod
    def from_profile(
        cls,
        profile: PlatformProfile,
        failure_rate: float | None = None,
        extra_backoff_s: float = 0.0,
    ) -> "FailurePenalty":
        """Penalty for a platform profile's reliability coefficients.

        The retry overhead approximates the fixed (concurrency-independent)
        part of a single fresh invocation's cold pipeline: scheduling base
        cost plus the microVM boot.
        """
        rate = profile.failure_rate if failure_rate is None else failure_rate
        overhead = profile.sched_base_s + profile.build_base_s + extra_backoff_s
        return cls(
            failure_rate=rate,
            max_retries=profile.max_retries,
            retry_overhead_s=overhead,
        )

    # ------------------------------------------------------------------ #
    @property
    def success_probability(self) -> float:
        return 1.0 - self.failure_rate ** (self.max_retries + 1)

    def expected_attempts(self) -> float:
        q = self.failure_rate
        if q == 0.0:
            return 1.0
        return (1.0 - q ** (self.max_retries + 1)) / (1.0 - q)

    def expected_failures(self) -> float:
        return self.failure_rate * self.expected_attempts()

    def expected_billed_multiplier(self) -> float:
        """Billed execution seconds per group, as a multiple of one ET."""
        return self.success_probability + 0.5 * self.expected_failures()

    def expected_max_attempts(self, n_groups: int) -> float:
        """Expected attempts of the unluckiest of ``n_groups`` groups."""
        if n_groups < 1:
            raise ValueError("n_groups must be >= 1")
        q = self.failure_rate
        if q == 0.0:
            return 1.0
        total = 1.0
        for k in range(1, self.max_retries + 1):
            total += 1.0 - (1.0 - q**k) ** n_groups
        return total

    def expected_tail_retries(self, n_groups: int) -> float:
        """Retries the burst's critical path is expected to serialize."""
        return self.expected_max_attempts(n_groups) - 1.0

    def expected_work_loss_ratio(self) -> float:
        """Fraction of billed execution seconds that produce no result."""
        billed = self.expected_billed_multiplier()
        if billed <= 0.0:
            return 0.0
        return 0.5 * self.expected_failures() / billed
