"""Pearson χ² goodness-of-fit validation (paper Sec. 2.4).

The statistic is ``Σ (observed - expected)² / expected`` across packing
degrees, compared against the χ² distribution. The paper uses 14 degrees of
freedom (15 sampled degrees for Sort, the smallest maximum across apps) and
a 99.5% confidence level, for which the critical value is 4.075; a
statistic *below* the critical value accepts the null hypothesis that the
observed and model-expected values come from the same distribution.

(Note the direction: this is the paper's usage — the low-tail quantile as an
acceptance threshold, i.e. the fit must be so good that the normalized
squared error is far below what χ²₁₄ would typically produce.)

Paper-reported maxima: 3.81 for service time, 0.055 for expense.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats

#: The paper's setup: dof = 15 - 1, confidence 99.5%.
PAPER_DOF = 14
PAPER_CONFIDENCE = 0.995


def chi_square_statistic(observed: Sequence[float], expected: Sequence[float]) -> float:
    """``Σ (O - E)² / E`` over paired samples."""
    obs = np.asarray(observed, dtype=float)
    exp = np.asarray(expected, dtype=float)
    if obs.shape != exp.shape:
        raise ValueError("observed/expected length mismatch")
    if obs.size == 0:
        raise ValueError("empty sample")
    if np.any(exp <= 0):
        raise ValueError("expected values must be positive")
    return float(np.sum((obs - exp) ** 2 / exp))


@dataclass(frozen=True)
class GoodnessOfFit:
    """One χ² test outcome."""

    statistic: float
    dof: int
    confidence: float

    @property
    def critical_value(self) -> float:
        """Lower-tail χ² quantile at ``1 - confidence`` (4.075 for the paper)."""
        return float(stats.chi2.ppf(1.0 - self.confidence, self.dof))

    @property
    def accepted(self) -> bool:
        return self.statistic < self.critical_value


def validate_fit(
    observed: Sequence[float],
    expected: Sequence[float],
    dof: int = PAPER_DOF,
    confidence: float = PAPER_CONFIDENCE,
) -> GoodnessOfFit:
    """Run the paper's χ² acceptance test on a model's predictions."""
    return GoodnessOfFit(
        statistic=chi_square_statistic(observed, expected),
        dof=dof,
        confidence=confidence,
    )
