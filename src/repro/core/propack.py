"""The ProPack facade — the library's primary public entry point.

Usage::

    platform = ServerlessPlatform(AWS_LAMBDA, seed=7)
    propack = ProPack(platform)
    outcome = propack.run(VIDEO, concurrency=5000)          # joint objective
    outcome.result.service_time(), outcome.total_expense_usd

``ProPack.run`` profiles the app (once; cached), fits the models, validates
them (χ², Sec. 2.4), picks the optimal degree under the requested objective
(optionally under a QoS tail bound), executes the packed burst, and reports
the result *with* the profiling overhead folded into the expense — exactly
the accounting the paper's evaluation uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.models import ExecutionTimeModel, ScalingTimeModel
from repro.core.optimizer import PackingOptimizer
from repro.core.planner import PackingPlan, build_plan
from repro.core.reliability import FailurePenalty
from repro.core.profiler import (
    InterferenceProfile,
    InterferenceProfiler,
    ScalingProfile,
    ScalingProfiler,
)
from repro.core.qos import QoSDecision, QoSWeightSearch
from repro.core.validation import GoodnessOfFit, validate_fit
from repro.platform.base import ServerlessPlatform
from repro.platform.metrics import RunResult
from repro.workloads.base import AppSpec


@dataclass
class ProPackOutcome:
    """A packed execution plus the overheads that produced it."""

    plan: PackingPlan
    result: RunResult
    interference_profile: InterferenceProfile
    scaling_profile: ScalingProfile
    qos_decision: Optional[QoSDecision] = None

    @property
    def overhead_usd(self) -> float:
        """Dollars spent building the models (charged to ProPack, not the
        baseline — paper Sec. 4)."""
        return self.interference_profile.overhead_usd

    @property
    def total_expense_usd(self) -> float:
        """Burst expense including ProPack's own exploration overhead."""
        return self.result.expense.total_usd + self.overhead_usd

    @property
    def service_time_s(self) -> float:
        return self.result.service_time()


class ProPack:
    """Performance- and cost-aware packing for concurrent serverless bursts."""

    def __init__(
        self,
        platform: ServerlessPlatform,
        profiler_repetitions: int = 1,
    ) -> None:
        self.platform = platform
        self.profiler_repetitions = profiler_repetitions
        self._interference_cache: dict[str, InterferenceProfile] = {}
        self._scaling_profile: Optional[ScalingProfile] = None

    # ------------------------------------------------------------------ #
    # Model estimation (cached; scaling is app-independent, per platform).
    # ------------------------------------------------------------------ #
    def interference_profile(self, app: AppSpec) -> InterferenceProfile:
        profile = self._interference_cache.get(app.name)
        if profile is None:
            profiler = InterferenceProfiler(
                self.platform, repetitions=self.profiler_repetitions
            )
            profile = profiler.profile(app)
            self._interference_cache[app.name] = profile
        return profile

    def scaling_profile(self) -> ScalingProfile:
        if self._scaling_profile is None:
            self._scaling_profile = ScalingProfiler(self.platform).profile()
        return self._scaling_profile

    def exec_model(self, app: AppSpec) -> ExecutionTimeModel:
        return self.interference_profile(app).model

    def scaling_model(self) -> ScalingTimeModel:
        return self.scaling_profile().model

    # ------------------------------------------------------------------ #
    def failure_penalty(self) -> FailurePenalty:
        """The platform's failure environment as an expected-value penalty."""
        return FailurePenalty.from_profile(self.platform.profile)

    def optimizer(
        self,
        app: AppSpec,
        concurrency: int,
        provisioned_mb: Optional[int] = None,
        failure: Optional[FailurePenalty] = None,
    ) -> PackingOptimizer:
        return PackingOptimizer(
            exec_model=self.exec_model(app),
            scaling_model=self.scaling_model(),
            app=app,
            profile=self.platform.profile,
            concurrency=concurrency,
            provisioned_mb=provisioned_mb,
            failure=failure,
        )

    def plan(
        self,
        app: AppSpec,
        concurrency: int,
        objective: str = "joint",
        w_s: float = 0.5,
        merit: str = "total",
        qos_tail_bound_s: Optional[float] = None,
        skew_cv: float = 0.0,
        failure_aware: bool = False,
        failure: Optional[FailurePenalty] = None,
    ) -> tuple[PackingPlan, Optional[QoSDecision]]:
        """Choose the packing degree (Eqs. 3/4/7, plus Eqs. 8-9 under QoS).

        ``skew_cv`` > 0 switches to the straggler-corrected skew-aware
        optimizer (see :mod:`repro.extensions.skewaware`). ``failure_aware``
        (or an explicit ``failure`` penalty) folds expected retry costs
        into both model curves, so the planner backs off the packing degree
        when crashes of packed instances would be expensive.
        """
        if failure is None and failure_aware:
            failure = self.failure_penalty()
        if skew_cv > 0.0:
            from repro.extensions.skewaware import SkewAwareOptimizer

            optimizer = SkewAwareOptimizer(
                exec_model=self.exec_model(app),
                scaling_model=self.scaling_model(),
                app=app,
                profile=self.platform.profile,
                concurrency=concurrency,
                cv=skew_cv,
            )
        else:
            optimizer = self.optimizer(app, concurrency, failure=failure)
        qos_decision: Optional[QoSDecision] = None
        if qos_tail_bound_s is not None:
            if objective != "joint":
                raise ValueError("QoS-aware planning applies to the joint objective")
            qos_decision = QoSWeightSearch(optimizer).search(qos_tail_bound_s)
            w_s = qos_decision.w_s
            merit = "tail"
        plan = build_plan(optimizer, objective=objective, w_s=w_s, merit=merit)
        return plan, qos_decision

    # ------------------------------------------------------------------ #
    def run(
        self,
        app: AppSpec,
        concurrency: int,
        objective: str = "joint",
        w_s: float = 0.5,
        merit: str = "total",
        qos_tail_bound_s: Optional[float] = None,
        skew_cv: float = 0.0,
        failure_aware: bool = False,
        failure: Optional[FailurePenalty] = None,
    ) -> ProPackOutcome:
        """Profile → plan → execute one burst; returns the full outcome."""
        plan, qos_decision = self.plan(
            app,
            concurrency,
            objective=objective,
            w_s=w_s,
            merit=merit,
            qos_tail_bound_s=qos_tail_bound_s,
            skew_cv=skew_cv,
            failure_aware=failure_aware,
            failure=failure,
        )
        spec = plan.burst_spec()
        if skew_cv > 0.0:
            from dataclasses import replace

            spec = replace(spec, skew_cv=skew_cv)
        result = self.platform.run_burst(spec)
        return ProPackOutcome(
            plan=plan,
            result=result,
            interference_profile=self.interference_profile(app),
            scaling_profile=self.scaling_profile(),
            qos_decision=qos_decision,
        )

    # ------------------------------------------------------------------ #
    def validate_models(
        self, app: AppSpec, concurrency: int
    ) -> dict[str, GoodnessOfFit]:
        """Sec. 2.4: χ² goodness-of-fit of the service and expense models.

        Observed values come from real (simulated) runs across sampled
        packing degrees at ``concurrency``; expected values from the fitted
        analytical models.
        """
        from repro.platform.invoker import BurstSpec  # local to avoid cycle

        optimizer = self.optimizer(app, concurrency)
        degrees = [d for d in optimizer.degrees() if d % 2 == 1 or d == max(optimizer.degrees())]
        observed_service: list[float] = []
        observed_expense: list[float] = []
        expected_service: list[float] = []
        expected_expense: list[float] = []
        for degree in degrees:
            result = self.platform.run_burst(
                BurstSpec(app=app, concurrency=concurrency, packing_degree=degree)
            )
            observed_service.append(result.service_time())
            observed_expense.append(result.expense.total_usd)
            expected_service.append(optimizer.service.predict(degree))
            expected_expense.append(optimizer.expense.predict(degree))
        return {
            "service": validate_fit(observed_service, expected_service),
            "expense": validate_fit(observed_expense, expected_expense),
        }
