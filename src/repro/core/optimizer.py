"""Optimal packing degree selection (paper Eqs. 3-7).

:class:`ServiceTimeModel` — ``S(P) = ET(P) + Scaling(C/P)`` (argument of Eq. 3):
the total service time is "the longest chain: the start of the last function
instance and the time it takes to execute the function instance".

:class:`ExpenseModel` — the argument of Eq. 4, extended to mirror the full
billing schedule (GB-seconds × instance count, per-request fees, storage
operations, and egress where charged) so the model is validated against the
same quantity the user is billed.

:class:`PackingOptimizer` — evaluates both curves over every feasible
packing degree and returns:

* ``optimal_service()`` — Eq. 3,
* ``optimal_expense()`` — Eq. 4,
* ``optimal_joint(w_s, w_e)`` — Eqs. 5-7: minimize the weighted sum of the
  *fractional regret* of each objective against its own optimum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.models import ExecutionTimeModel, ScalingTimeModel
from repro.core.reliability import FailurePenalty
from repro.platform.providers import PlatformProfile
from repro.workloads.base import AppSpec


def instance_layout(concurrency: int, degree: int) -> list[tuple[int, int]]:
    """(count, packed) pairs for a burst: full instances plus a remainder."""
    full, rest = divmod(concurrency, degree)
    layout = []
    if full:
        layout.append((full, degree))
    if rest:
        layout.append((1, rest))
    return layout


@dataclass(frozen=True)
class ServiceTimeModel:
    """Predicted service time as a function of the packing degree.

    With a :class:`~repro.core.reliability.FailurePenalty`, the prediction
    adds the expected serialized retry cost of the burst's unluckiest
    group: each retry on the critical path re-pays the full ``ET(P)`` (a
    packed crash loses ``P`` functions' worth of work) plus the cold
    re-invocation overhead — which is exactly why high packing degrees
    become unattractive under failures.
    """

    exec_model: ExecutionTimeModel
    scaling_model: ScalingTimeModel
    concurrency: int
    failure: Optional[FailurePenalty] = None

    def n_instances(self, degree: int) -> int:
        return math.ceil(self.concurrency / degree)

    def predict(self, degree: int, merit: str = "total") -> float:
        """``S(P)`` for a figure of merit.

        ``total`` uses the full effective concurrency; ``tail``/``median``
        use the start time of the 95%/50% quantile instance — instance
        starts are ordered, so the k-th start is the scaling time of an
        effective burst of k instances.
        """
        c_eff = self.n_instances(degree)
        if merit == "total":
            quantile = 1.0
        elif merit == "tail":
            quantile = 0.95
        elif merit == "median":
            quantile = 0.5
        else:
            raise ValueError(f"unknown figure of merit {merit!r}")
        et = self.exec_model.predict(degree)
        service = self.scaling_model.predict(math.ceil(quantile * c_eff)) + et
        if self.failure is not None:
            tail_retries = self.failure.expected_tail_retries(c_eff)
            service += tail_retries * (et + self.failure.retry_overhead_s)
        return service

    def curve(self, degrees: Sequence[int], merit: str = "total") -> np.ndarray:
        return np.asarray([self.predict(d, merit) for d in degrees])


@dataclass(frozen=True)
class ExpenseModel:
    """Predicted burst expense as a function of the packing degree.

    With a :class:`~repro.core.reliability.FailurePenalty`, the prediction
    mirrors the simulator's billing of failed work: crashed attempts bill
    half an ``ET`` in expectation, every attempt pays the request fee, and
    every attempt re-fetches its inputs — so on providers with a per-GB
    networking fee, retries re-pay the egress too.
    """

    exec_model: ExecutionTimeModel
    profile: PlatformProfile
    app: AppSpec
    concurrency: int
    provisioned_mb: Optional[int] = None
    failure: Optional[FailurePenalty] = None

    def _billed_gb(self) -> float:
        requested = self.provisioned_mb or self.profile.max_memory_mb
        step = self.profile.min_billed_memory_mb
        return (-(-requested // step) * step) / 1024.0

    def predict(self, degree: int) -> float:
        """Predicted dollars for the burst at ``degree``."""
        billed_gb = self._billed_gb()
        if self.failure is None:
            compute_mult = attempts = 1.0
            put_prob = 1.0
        else:
            compute_mult = self.failure.expected_billed_multiplier()
            attempts = self.failure.expected_attempts()
            put_prob = self.failure.success_probability
        compute = 0.0
        requests = 0.0
        storage = 0.0
        transferred_mb = 0.0
        for count, packed in instance_layout(self.concurrency, degree):
            et = self.exec_model.predict(packed)
            compute += count * et * compute_mult * billed_gb * self.profile.gb_second_usd
            requests += count * attempts * self.profile.per_request_usd
            storage += count * packed * (
                put_prob * self.profile.storage_put_usd
                + attempts * self.profile.storage_get_usd
            )
            shared = self.app.io_mb * self.app.io_shared_fraction
            private = self.app.io_mb * (1.0 - self.app.io_shared_fraction)
            transferred_mb += count * attempts * (shared + private * packed)
        egress = (transferred_mb / 1024.0) * self.profile.egress_usd_per_gb
        return compute + requests + storage + egress

    def curve(self, degrees: Sequence[int]) -> np.ndarray:
        return np.asarray([self.predict(d) for d in degrees])


@dataclass
class PackingOptimizer:
    """Evaluates the packing-degree search space for one (app, C) pair."""

    exec_model: ExecutionTimeModel
    scaling_model: ScalingTimeModel
    app: AppSpec
    profile: PlatformProfile
    concurrency: int
    provisioned_mb: Optional[int] = None
    latency_safety: float = 0.98
    failure: Optional[FailurePenalty] = None

    def __post_init__(self) -> None:
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self.service = ServiceTimeModel(
            self.exec_model, self.scaling_model, self.concurrency, self.failure
        )
        self.expense = ExpenseModel(
            self.exec_model,
            self.profile,
            self.app,
            self.concurrency,
            self.provisioned_mb,
            self.failure,
        )

    # ------------------------------------------------------------------ #
    def max_degree(self) -> int:
        """``P_max``: memory capacity AND the platform execution cap.

        Paper Sec. 2.1: the memory limit bounds packing; the predicted
        execution time must also stay within the platform's maximum
        execution time (Lambda kills longer runs), with a small safety
        margin for execution noise.
        """
        memory_cap = self.app.max_packing_degree(self.profile.max_memory_mb)
        latency_cap = self.exec_model.max_degree_within(
            self.profile.max_execution_seconds * self.latency_safety
        )
        return max(1, min(memory_cap, latency_cap, self.concurrency))

    def degrees(self) -> list[int]:
        return list(range(1, self.max_degree() + 1))

    # ------------------------------------------------------------------ #
    def optimal_service(self, merit: str = "total") -> int:
        """Eq. 3: the degree minimizing predicted service time."""
        degs = self.degrees()
        return int(degs[int(np.argmin(self.service.curve(degs, merit)))])

    def optimal_expense(self) -> int:
        """Eq. 4: the degree minimizing predicted expense."""
        degs = self.degrees()
        return int(degs[int(np.argmin(self.expense.curve(degs)))])

    def regrets(self, merit: str = "total") -> tuple[np.ndarray, np.ndarray]:
        """ΔS and ΔE (Eqs. 5-6): fractional change from each optimum."""
        degs = self.degrees()
        s = self.service.curve(degs, merit)
        e = self.expense.curve(degs)
        return (s - s.min()) / s.min(), (e - e.min()) / e.min()

    def optimal_joint(
        self, w_s: float = 0.5, w_e: Optional[float] = None, merit: str = "total"
    ) -> int:
        """Eq. 7: minimize ``W_S·ΔS + W_E·ΔE`` (weights sum to 1)."""
        if w_e is None:
            w_e = 1.0 - w_s
        if not math.isclose(w_s + w_e, 1.0, abs_tol=1e-9):
            raise ValueError(f"weights must sum to 1 (got {w_s} + {w_e})")
        if not 0.0 <= w_s <= 1.0:
            raise ValueError(f"W_S must be in [0, 1] (got {w_s})")
        delta_s, delta_e = self.regrets(merit)
        combined = w_s * delta_s + w_e * delta_e
        return int(self.degrees()[int(np.argmin(combined))])
