"""Provider billing.

"Users are only charged for the time they actually use the computing
resources (execution time per function instance × memory consumption)"
(paper Sec. 1) — scaling/queueing delay is never billed. Line items:

* compute — GB-seconds: execution seconds × provisioned GB × rate,
* requests — one per *instance* invocation (packing cuts the request count),
* storage — per PUT/GET request,
* egress — per GB transferred, only on providers with a networking fee
  (Google/Azure; AWS charges none — paper Fig. 21 discussion).

:class:`BillingFidelity` layers the *schedule* realism from "Demystifying
Serverless Costs on Public Platforms" on top: duration rounding (per-ms vs
100 ms), a minimum billed duration, and a CPU-share throttling multiplier.
The default fidelity is exact — billed seconds == executed seconds,
byte-for-byte — so every pre-existing expense stays identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.platform.metrics import ExpenseBreakdown, InstanceRecord
from repro.platform.providers import PlatformProfile
from repro.platform.storage import StorageUsage


@dataclass(frozen=True)
class BillingFidelity:
    """How a provider turns executed seconds into billed seconds.

    Applied in provider order: throttling stretches the measured duration,
    the minimum billed duration floors it, then the granularity rounds it
    *up*. All knobs default to the exact schedule, under which
    :meth:`billed_seconds` returns its input unchanged (no float
    round-trip), preserving byte-identical billing for existing runs.
    """

    granularity_s: float = 0.0        # 0 = exact; 0.1 = legacy 100 ms
    min_billed_s: float = 0.0
    throttle_multiplier: float = 1.0  # >= 1; billed-time stretch

    def __post_init__(self) -> None:
        if self.granularity_s < 0.0 or not math.isfinite(self.granularity_s):
            raise ValueError("billing granularity must be finite and >= 0")
        if self.min_billed_s < 0.0 or not math.isfinite(self.min_billed_s):
            raise ValueError("minimum billed duration must be finite and >= 0")
        if self.throttle_multiplier < 1.0 or not math.isfinite(
            self.throttle_multiplier
        ):
            raise ValueError("throttle multiplier must be finite and >= 1")

    @classmethod
    def from_profile(cls, profile: PlatformProfile) -> "BillingFidelity":
        return cls(
            granularity_s=profile.billing_granularity_s,
            min_billed_s=profile.min_billed_duration_s,
            throttle_multiplier=profile.cpu_throttle_multiplier,
        )

    @property
    def exact(self) -> bool:
        """True when billed seconds always equal executed seconds."""
        return (
            self.granularity_s == 0.0
            and self.min_billed_s == 0.0
            and self.throttle_multiplier == 1.0
        )

    def billed_seconds(self, exec_seconds: float) -> float:
        """Billed duration for one executed attempt.

        Guaranteed ``>= exec_seconds`` (the billing-legality invariant) and
        monotone in its input. Each transform is guarded so the exact
        schedule returns ``exec_seconds`` unchanged.
        """
        if exec_seconds < 0.0:
            raise ValueError("executed seconds must be non-negative")
        billed = exec_seconds
        if self.throttle_multiplier != 1.0:
            billed *= self.throttle_multiplier
        if self.min_billed_s > 0.0 and billed < self.min_billed_s:
            billed = self.min_billed_s
        if self.granularity_s > 0.0:
            # Round *up* to the granularity; the epsilon forgives float
            # representation noise (0.3 / 0.1 is 2.999…96) so an exact
            # multiple never pays an extra tick.
            units = math.ceil(billed / self.granularity_s - 1e-9)
            billed = units * self.granularity_s
        return billed


#: The idealized schedule every seeded golden was recorded under.
EXACT_BILLING = BillingFidelity()


class BillingModel:
    """Converts run records + storage usage into an expense breakdown."""

    def __init__(
        self,
        profile: PlatformProfile,
        fidelity: Optional[BillingFidelity] = None,
    ) -> None:
        self.profile = profile
        self.fidelity = (
            fidelity if fidelity is not None else BillingFidelity.from_profile(profile)
        )

    def billed_memory_mb(self, requested_mb: int) -> int:
        """Providers bill in memory increments with a floor."""
        step = self.profile.min_billed_memory_mb
        if requested_mb <= 0:
            raise ValueError("requested memory must be positive")
        increments = -(-requested_mb // step)  # ceil division
        return int(increments * step)

    def billed_seconds(self, exec_seconds: float) -> float:
        """Executed → billed duration under this model's fidelity."""
        return self.fidelity.billed_seconds(exec_seconds)

    def instance_compute_usd(self, record: InstanceRecord) -> float:
        billed_gb = self.billed_memory_mb(record.provisioned_mb) / 1024.0
        billed_s = self.fidelity.billed_seconds(record.exec_seconds)
        return billed_s * billed_gb * self.profile.gb_second_usd

    def keepalive_usd(self, idle_gb_seconds: float) -> float:
        """Warm-idle charge at the provisioned-concurrency-style rate.

        Only keep-alive policies accrue idle GB-seconds; a service running
        pure cold starts passes 0 here and is never billed for warmth.
        """
        if idle_gb_seconds < 0.0:
            raise ValueError("idle GB-seconds must be non-negative")
        return idle_gb_seconds * self.profile.keepalive_gb_second_usd

    def serving_expense(
        self,
        exec_gb_seconds: float,
        n_dispatches: int,
        idle_gb_seconds: float = 0.0,
        egress_gb: float = 0.0,
    ) -> ExpenseBreakdown:
        """Expense of a sustained serving run (see :mod:`repro.serving`).

        ``exec_gb_seconds`` covers billed execution including any billed
        cold-start initialization and any partially executed (crashed or
        timed-out) attempts — providers charge for failed work; each
        dispatch pays one request fee. ``egress_gb`` is the re-shipped
        payload traffic of fault retries, billed only on providers with a
        networking fee.

        Fidelity rounding is per *invocation*, so it cannot be applied to
        an already-aggregated GB-seconds total; serving paths that want
        rounded billing must round per dispatch before aggregating (see
        :meth:`billed_seconds`).
        """
        if egress_gb < 0.0:
            raise ValueError("egress GB must be non-negative")
        return ExpenseBreakdown(
            compute_usd=float(exec_gb_seconds * self.profile.gb_second_usd),
            requests_usd=float(n_dispatches * self.profile.per_request_usd),
            storage_usd=0.0,
            egress_usd=float(egress_gb * self.profile.egress_usd_per_gb),
            keepalive_usd=self.keepalive_usd(idle_gb_seconds),
        )

    def burst_expense(
        self,
        records: list[InstanceRecord],
        storage: StorageUsage,
    ) -> ExpenseBreakdown:
        compute = sum(self.instance_compute_usd(r) for r in records)
        requests = len(records) * self.profile.per_request_usd
        storage_usd = (
            storage.put_requests * self.profile.storage_put_usd
            + storage.get_requests * self.profile.storage_get_usd
        )
        egress = (storage.transferred_mb / 1024.0) * self.profile.egress_usd_per_gb
        return ExpenseBreakdown(
            compute_usd=float(compute),
            requests_usd=float(requests),
            storage_usd=float(storage_usd),
            egress_usd=float(egress),
        )
