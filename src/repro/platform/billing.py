"""Provider billing.

"Users are only charged for the time they actually use the computing
resources (execution time per function instance × memory consumption)"
(paper Sec. 1) — scaling/queueing delay is never billed. Line items:

* compute — GB-seconds: execution seconds × provisioned GB × rate,
* requests — one per *instance* invocation (packing cuts the request count),
* storage — per PUT/GET request,
* egress — per GB transferred, only on providers with a networking fee
  (Google/Azure; AWS charges none — paper Fig. 21 discussion).
"""

from __future__ import annotations

from repro.platform.metrics import ExpenseBreakdown, InstanceRecord
from repro.platform.providers import PlatformProfile
from repro.platform.storage import StorageUsage


class BillingModel:
    """Converts run records + storage usage into an expense breakdown."""

    def __init__(self, profile: PlatformProfile) -> None:
        self.profile = profile

    def billed_memory_mb(self, requested_mb: int) -> int:
        """Providers bill in memory increments with a floor."""
        step = self.profile.min_billed_memory_mb
        if requested_mb <= 0:
            raise ValueError("requested memory must be positive")
        increments = -(-requested_mb // step)  # ceil division
        return int(increments * step)

    def instance_compute_usd(self, record: InstanceRecord) -> float:
        billed_gb = self.billed_memory_mb(record.provisioned_mb) / 1024.0
        return record.exec_seconds * billed_gb * self.profile.gb_second_usd

    def keepalive_usd(self, idle_gb_seconds: float) -> float:
        """Warm-idle charge at the provisioned-concurrency-style rate.

        Only keep-alive policies accrue idle GB-seconds; a service running
        pure cold starts passes 0 here and is never billed for warmth.
        """
        if idle_gb_seconds < 0.0:
            raise ValueError("idle GB-seconds must be non-negative")
        return idle_gb_seconds * self.profile.keepalive_gb_second_usd

    def serving_expense(
        self,
        exec_gb_seconds: float,
        n_dispatches: int,
        idle_gb_seconds: float = 0.0,
        egress_gb: float = 0.0,
    ) -> ExpenseBreakdown:
        """Expense of a sustained serving run (see :mod:`repro.serving`).

        ``exec_gb_seconds`` covers billed execution including any billed
        cold-start initialization and any partially executed (crashed or
        timed-out) attempts — providers charge for failed work; each
        dispatch pays one request fee. ``egress_gb`` is the re-shipped
        payload traffic of fault retries, billed only on providers with a
        networking fee.
        """
        if egress_gb < 0.0:
            raise ValueError("egress GB must be non-negative")
        return ExpenseBreakdown(
            compute_usd=float(exec_gb_seconds * self.profile.gb_second_usd),
            requests_usd=float(n_dispatches * self.profile.per_request_usd),
            storage_usd=0.0,
            egress_usd=float(egress_gb * self.profile.egress_usd_per_gb),
            keepalive_usd=self.keepalive_usd(idle_gb_seconds),
        )

    def burst_expense(
        self,
        records: list[InstanceRecord],
        storage: StorageUsage,
    ) -> ExpenseBreakdown:
        compute = sum(self.instance_compute_usd(r) for r in records)
        requests = len(records) * self.profile.per_request_usd
        storage_usd = (
            storage.put_requests * self.profile.storage_put_usd
            + storage.get_requests * self.profile.storage_get_usd
        )
        egress = (storage.transferred_mb / 1024.0) * self.profile.egress_usd_per_gb
        return ExpenseBreakdown(
            compute_usd=float(compute),
            requests_usd=float(requests),
            storage_usd=float(storage_usd),
            egress_usd=float(egress),
        )
