"""Function-instance execution.

An instance is one container/microVM running ``n_packed`` functions of the
same application as parallel threads sharing the instance's memory and
cores (paper Sec. 2.6, "Practical realization of function packing"). The
execution time comes from the mechanistic interference model plus a small
lognormal noise term; provider-side isolation means the number of
*co-running instances* does not affect it (Fig. 5a), except through the
profile's ``concurrency_leak`` (used for FuncX).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.server import Server
from repro.workloads.base import AppSpec


@dataclass
class FunctionInstance:
    """One running container executing ``n_packed`` packed functions."""

    instance_id: int
    app: AppSpec
    n_packed: int
    server: Server
    provisioned_mb: int
    cores: int

    def release(self) -> None:
        """Return this instance's resources to its server."""
        self.server.release(cores=self.cores, memory_mb=self.provisioned_mb)
