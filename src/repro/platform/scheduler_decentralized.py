"""Decentralized placement scheduling (Wukong / FaaSNet-style).

The paper's related-work discussion (Sec. 5): systems like Wukong [10] and
FaaSNet [80] decentralize scheduling/provisioning to improve scalability,
but "decentralization is not free, may continue to be prone to scalability
bottlenecks at high concurrency" and "excessive decentralization may induce
high synchronization and communication overhead".

The model: ``shards`` independent placement loops, requests assigned
round-robin, dividing the quadratic search term by the shard count. Every
placement must first clear a *serialized synchronization bus* — the
consistency round that keeps the shards' fleet views coherent — whose
per-placement cost grows with the shard count (``sync_cost·log2(1+k)``).
Few shards: the bus is cheap and the quadratic win dominates. Many shards:
the bus becomes the new serial bottleneck — the "excessive
decentralization" regime. Packing composes with either topology (the
paper's "complementary, not competitive" claim), and is the only lever
that also cuts expense.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.cluster.server import ServerPool
from repro.platform.scheduler import PlacementScheduler
from repro.sim.engine import Simulator
from repro.sim.resources import FifoResource


class DecentralizedScheduler:
    """Sharded placement behind a serialized consistency bus.

    Exposes the same ``request_placement`` interface as the centralized
    :class:`~repro.platform.scheduler.PlacementScheduler`, so the invoker
    is oblivious to the control-plane topology.
    """

    def __init__(
        self,
        sim: Simulator,
        pool: ServerPool,
        base_cost_s: float,
        search_cost_s: float,
        shards: int,
        sync_cost_s: float,
    ) -> None:
        if shards < 1:
            raise ValueError("need at least one scheduler shard")
        if sync_cost_s < 0:
            raise ValueError("sync cost must be non-negative")
        self.sim = sim
        self.shards = shards
        self.sync_cost_s = sync_cost_s
        self.bus_cost_s = sync_cost_s * math.log2(1 + shards) if shards > 1 else 0.0
        self._bus = FifoResource(sim, servers=1, name="sync-bus")
        self._shards = [
            PlacementScheduler(sim, pool, base_cost_s, search_cost_s)
            for _ in range(shards)
        ]
        self._cursor = 0

    @property
    def placements_made(self) -> int:
        return sum(shard.placements_made for shard in self._shards)

    def request_placement(
        self,
        cores: int,
        memory_mb: int,
        callback: Callable[..., None],
        *args: Any,
    ) -> None:
        shard = self._shards[self._cursor]
        self._cursor = (self._cursor + 1) % self.shards
        if self.bus_cost_s > 0.0:
            self._bus.submit(
                self.bus_cost_s,
                shard.request_placement,
                cores,
                memory_mb,
                callback,
                *args,
            )
        else:
            shard.request_placement(cores, memory_mb, callback, *args)
