"""Container / microVM build-and-ship stages.

Stage 2 of an invocation: "the server containing the function image forms
containers (or microVMs …) by downloading and installing the runtime
environment and the dependencies … bounded by the network bandwidth and the
computing capacity of the server" — modelled as a FIFO multi-server queue
with ``build_slots`` parallel build slots. Builds start at invocation time
(the image server can prepare containers while placement is still being
decided — it does not need the target server).

Stage 3: "the formed containers are shipped to different servers of the
datacenter … bounded by the network bandwidth of the server forming the
containers" — modelled as processor sharing of the builder's uplink
(:class:`repro.cluster.network.NetworkFabric`). A container ships once it
is both built *and* placed.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.cluster.network import NetworkFabric
from repro.cluster.registry import FunctionImage
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.sim.resources import FifoResource


class ContainerPipeline:
    """Build containers on the image server; ship them over its uplink."""

    def __init__(
        self,
        sim: Simulator,
        network: NetworkFabric,
        rng: RandomStreams,
        build_slots: int,
        build_rate_mb_s: float,
        build_base_s: float,
        ship_overhead_mb: float,
        build_cache_factor: float = 1.0,
        build_noise_sigma: float = 0.03,
    ) -> None:
        if build_rate_mb_s <= 0:
            raise ValueError("build rate must be positive")
        if not 0.0 < build_cache_factor <= 1.0:
            raise ValueError("build_cache_factor must be in (0, 1]")
        self.sim = sim
        self.network = network
        self.rng = rng
        self.builder = FifoResource(sim, build_slots, name="builder")
        self.build_rate_mb_s = build_rate_mb_s
        self.build_base_s = build_base_s
        self.ship_overhead_mb = ship_overhead_mb
        self.build_cache_factor = build_cache_factor
        self.build_noise_sigma = build_noise_sigma
        self.containers_built = 0

    def build_seconds(self, image: FunctionImage, build_factor: float = 1.0) -> float:
        """Noise-free build time for one container of ``image``."""
        install = image.install_mb * self.build_cache_factor * build_factor
        return self.build_base_s + install / self.build_rate_mb_s

    def ship_size_mb(self, image: FunctionImage, ship_factor: float = 1.0) -> float:
        """Bytes on the wire when shipping one built container."""
        return (
            image.total_mb * self.build_cache_factor * ship_factor
            + self.ship_overhead_mb
        )

    def build(
        self,
        image: FunctionImage,
        on_built: Callable[..., None],
        *args: Any,
        build_factor: float = 1.0,
    ) -> None:
        """Queue one container build; ``on_built(*args)`` fires when done."""
        work = self.build_seconds(image, build_factor) * self.rng.lognormal_factor(
            "build", self.build_noise_sigma
        )
        self.builder.submit(work, self._built, on_built, args)

    def _built(self, on_built: Callable[..., None], args: tuple) -> None:
        self.containers_built += 1
        on_built(*args)

    def ship(
        self,
        image: FunctionImage,
        on_shipped: Callable[..., None],
        *args: Any,
        ship_factor: float = 1.0,
    ) -> None:
        """Ship one built container to its placement target."""
        self.network.ship(self.ship_size_mb(image, ship_factor), on_shipped, *args)
