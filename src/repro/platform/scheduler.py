"""Placement scheduler.

Upon invocation, "a scheduling algorithm searches among the running servers
of the datacenter to execute the function. … The scheduling time increases
with the invocation concurrency, as the scheduling algorithm needs to search
and find more places" (paper Sec. 1).

We model a single placement loop that serves requests in order; request
``k`` of a burst costs ``sched_base + sched_search * (placements already
made)``, because each new placement leaves one more busy server the search
must consider. The cumulative delay of the last request is therefore
quadratic in the burst size — the dominant term of the paper's Eq. 2.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.cluster.server import ServerPool
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # annotation-only import
    from repro.telemetry.metrics import MetricsRegistry

#: Search-time histogram boundaries: milliseconds to the multi-second
#: quadratic tail a large burst's last placement pays.
_SEARCH_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


class PlacementScheduler:
    """Serial placement loop with occupancy-proportional search cost."""

    def __init__(
        self,
        sim: Simulator,
        pool: ServerPool,
        base_cost_s: float,
        search_cost_s: float,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.sim = sim
        self.pool = pool
        self.base_cost_s = base_cost_s
        self.search_cost_s = search_cost_s
        self._queue: list[tuple[int, int, Callable[..., None], tuple]] = []
        self._busy = False
        self.placements_made = 0
        self._search_hist = None
        self._placed_ctr = None
        if metrics is not None:
            self._search_hist = metrics.histogram(
                "propack_sched_search_seconds",
                buckets=_SEARCH_BUCKETS,
                help="Placement-search time per request (grows with occupancy).",
            )
            self._placed_ctr = metrics.counter(
                "propack_sched_placements_total",
                help="Placements completed by the scheduling loop.",
            )

    def request_placement(
        self,
        cores: int,
        memory_mb: int,
        callback: Callable[..., None],
        *args: Any,
    ) -> None:
        """Queue a placement; ``callback(server, *args)`` fires when placed."""
        self._queue.append((cores, memory_mb, callback, args))
        if not self._busy:
            self._serve_next()

    def _serve_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        cores, memory_mb, callback, args = self._queue.pop(0)
        search_time = self.base_cost_s + self.search_cost_s * self.placements_made
        if self._search_hist is not None:
            self._search_hist.observe(search_time)
        self.sim.schedule(search_time, self._place, cores, memory_mb, callback, args)

    def _place(
        self,
        cores: int,
        memory_mb: int,
        callback: Callable[..., None],
        args: tuple,
    ) -> None:
        server = self.pool.place(cores, memory_mb)
        self.placements_made += 1
        if self._placed_ctr is not None:
            self._placed_ctr.inc()
        callback(server, *args)
        self._serve_next()
