"""Shared-fleet multi-tenant simulation.

Every burst in the main harness runs on its own pristine datacenter. Real
platforms multiplex tenants: their bursts contend for the *same* placement
scheduler, image-builder slots, and shipping uplink. This module runs
several tenants' bursts on one shared simulation — the substrate for the
paper's Sec. 5 observation that "function packing may also be indirectly
beneficial to cloud providers, as function packing improves resource
utilization": a tenant who packs stops monopolizing the placement loop,
and *other* tenants scale faster.

    fleet = SharedFleet(AWS_LAMBDA, seed=7)
    fleet.submit("analytics", BurstSpec(app=SORT, concurrency=3000))
    fleet.submit("api", BurstSpec(app=XAPIAN, concurrency=500), at_time=5.0)
    results = fleet.run()   # {"analytics": RunResult, "api": RunResult}
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cluster.network import NetworkFabric
from repro.cluster.registry import FunctionImage, ImageRegistry
from repro.cluster.server import ServerPool
from repro.interference.model import InterferenceModel
from repro.platform.container import ContainerPipeline
from repro.platform.invoker import BurstInvoker, BurstSpec
from repro.platform.metrics import RunResult
from repro.platform.providers import PlatformProfile
from repro.platform.scheduler import PlacementScheduler
from repro.platform.storage import ObjectStore
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams


@dataclass
class FleetAccount:
    """Per-tenant fairness ledger of a shared fleet.

    The conservation identity ``submitted == admitted + rejected`` is what
    :func:`repro.chaos.invariants.check_tenant_conservation` audits; the
    fused fleet (``repro.fusion``) reuses this account type with non-zero
    rejections and proportional ``billed_usd``.
    """

    tenant: str
    submitted: int = 0   # functions the tenant asked for
    admitted: int = 0    # functions the fleet agreed to run
    rejected: int = 0    # functions turned away (quota, shape)
    billed_usd: float = 0.0

    def conserved(self) -> bool:
        return self.submitted == self.admitted + self.rejected


@dataclass
class _Submission:
    tenant: str
    spec: BurstSpec
    at_time: float
    invoker: Optional[BurstInvoker] = None


class SharedFleet:
    """One datacenter, many tenants, overlapping bursts."""

    def __init__(
        self,
        profile: PlatformProfile,
        seed: int = 0,
        enforce_timeout: bool = True,
    ) -> None:
        self.profile = profile
        self.seed = seed
        self.enforce_timeout = enforce_timeout
        self.sim = Simulator()
        self._root_rng = RandomStreams(seed)
        self.pool = ServerPool(
            profile.fleet_servers, profile.server_cores, profile.server_memory_mb
        )
        self.network = NetworkFabric(self.sim, profile.uplink_gbps)
        if profile.scheduler_shards > 1:
            from repro.platform.scheduler_decentralized import DecentralizedScheduler

            self.scheduler = DecentralizedScheduler(
                self.sim,
                self.pool,
                profile.sched_base_s,
                profile.sched_search_s,
                shards=profile.scheduler_shards,
                sync_cost_s=profile.sched_sync_s,
            )
        else:
            self.scheduler = PlacementScheduler(
                self.sim, self.pool, profile.sched_base_s, profile.sched_search_s
            )
        self.pipeline = ContainerPipeline(
            self.sim,
            self.network,
            self._root_rng.spawn("pipeline"),
            build_slots=profile.build_slots,
            build_rate_mb_s=profile.build_rate_mb_s,
            build_base_s=profile.build_base_s,
            ship_overhead_mb=profile.ship_overhead_mb,
            build_cache_factor=profile.build_cache_factor,
        )
        self.registry = ImageRegistry()
        self._submissions: list[_Submission] = []
        self._accounts: dict[str, FleetAccount] = {}
        self._ran = False

    # ------------------------------------------------------------------ #
    def _image_for(self, spec: BurstSpec) -> FunctionImage:
        app = spec.app
        if app.name not in self.registry:
            self.registry.register(
                FunctionImage(
                    name=app.name,
                    code_mb=app.code_mb,
                    runtime_mb=app.runtime_mb,
                    dependencies_mb=app.dependencies_mb,
                )
            )
        return self.registry.get(app.name)

    def submit(self, tenant: str, spec: BurstSpec, at_time: float = 0.0) -> None:
        """Queue a tenant's burst to begin at ``at_time``."""
        if self._ran:
            raise RuntimeError("fleet already ran; create a new SharedFleet")
        if at_time < 0:
            raise ValueError("at_time must be non-negative")
        if any(s.tenant == tenant for s in self._submissions):
            raise ValueError(f"tenant {tenant!r} already has a burst queued")
        self._submissions.append(_Submission(tenant, spec, at_time))
        account = self._accounts.setdefault(tenant, FleetAccount(tenant))
        account.submitted += spec.concurrency
        account.admitted += spec.concurrency  # the shared fleet never rejects

    def ledger(self) -> dict[str, FleetAccount]:
        """Per-tenant fairness accounts (billed after :meth:`run`)."""
        return dict(self._accounts)

    def run(self) -> dict[str, RunResult]:
        """Execute all queued bursts on the shared fleet."""
        if self._ran:
            raise RuntimeError("fleet already ran; create a new SharedFleet")
        if not self._submissions:
            raise ValueError("no bursts submitted")
        self._ran = True
        interference = InterferenceModel(
            cores=self.profile.cores_per_instance,
            isolation_penalty=self.profile.isolation_penalty,
            concurrency_leak=self.profile.concurrency_leak,
        )
        for submission in self._submissions:
            invoker = BurstInvoker(
                self.sim,
                self.profile,
                self.scheduler,
                self.pipeline,
                ObjectStore(),
                self._root_rng.spawn(f"tenant/{submission.tenant}"),
                interference,
                enforce_timeout=self.enforce_timeout,
            )
            submission.invoker = invoker
            self.sim.schedule_at(
                submission.at_time, invoker.begin, submission.spec,
                self._image_for(submission.spec),
            )
        self.sim.run()
        results = {s.tenant: s.invoker.collect() for s in self._submissions}
        for tenant, result in results.items():
            self._accounts[tenant].billed_usd = result.expense.total_usd
        return results
