"""Serverless platform substrate (control plane + data plane).

A :class:`ServerlessPlatform` glues together the datacenter substrate
(:mod:`repro.cluster`) with the serverless control plane:

* :mod:`~repro.platform.providers` — coefficient profiles for AWS Lambda,
  Google Cloud Functions, Azure Functions (and a generic profile).
* :mod:`~repro.platform.scheduler` — the placement scheduler whose
  per-request search cost grows with outstanding placements.
* :mod:`~repro.platform.container` — container/microVM build + ship pipeline.
* :mod:`~repro.platform.instance` — function-instance execution model.
* :mod:`~repro.platform.billing` — provider billing (GB-seconds, requests,
  storage, networking egress where the provider charges it).
* :mod:`~repro.platform.storage` — S3-like object store accounting.
* :mod:`~repro.platform.invoker` — Step-Functions-like burst invoker.
* :mod:`~repro.platform.metrics` — per-instance records and run results.
"""

from repro.platform.base import ServerlessPlatform
from repro.platform.invoker import BurstSpec
from repro.platform.multitenant import SharedFleet
from repro.platform.metrics import ExpenseBreakdown, InstanceRecord, RunResult
from repro.platform.providers import (
    AWS_LAMBDA,
    AZURE_FUNCTIONS,
    GOOGLE_CLOUD_FUNCTIONS,
    PROVIDERS,
    PlatformProfile,
)

__all__ = [
    "ServerlessPlatform",
    "BurstSpec",
    "SharedFleet",
    "ExpenseBreakdown",
    "InstanceRecord",
    "RunResult",
    "PlatformProfile",
    "AWS_LAMBDA",
    "GOOGLE_CLOUD_FUNCTIONS",
    "AZURE_FUNCTIONS",
    "PROVIDERS",
]
