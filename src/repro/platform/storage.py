"""S3-like object store accounting.

The paper stores results and intermediate application data in AWS S3 and
includes its cost in the expense analysis (Sec. 3). We account request
counts and transferred bytes per burst; the billing model converts them to
dollars, including per-GB egress on providers that charge a networking fee.

Packing co-locates functions inside one instance, so the *shareable*
fraction of each function's I/O (common inputs, merged outputs, shared
runtime downloads) is transferred once per instance rather than once per
function — the mechanism behind Fig. 21's larger expense savings on
Google/Azure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.base import AppSpec


@dataclass
class StorageUsage:
    """Aggregate storage activity of one burst."""

    put_requests: int = 0
    get_requests: int = 0
    transferred_mb: float = 0.0

    def __iadd__(self, other: "StorageUsage") -> "StorageUsage":
        self.put_requests += other.put_requests
        self.get_requests += other.get_requests
        self.transferred_mb += other.transferred_mb
        return self


class ObjectStore:
    """Accounts storage traffic for instances of a burst."""

    def __init__(self) -> None:
        self.usage = StorageUsage()

    def instance_io(self, app: AppSpec, n_packed: int) -> StorageUsage:
        """Storage activity for one instance packing ``n_packed`` functions.

        Shareable bytes move once per instance; private bytes once per
        packed function. Each function still issues its own GET (input
        manifest) and PUT (result object).
        """
        shared = app.io_mb * app.io_shared_fraction
        private = app.io_mb * (1.0 - app.io_shared_fraction)
        return StorageUsage(
            put_requests=n_packed,
            get_requests=n_packed,
            transferred_mb=shared + private * n_packed,
        )

    def record_instance(self, app: AppSpec, n_packed: int) -> StorageUsage:
        usage = self.instance_io(app, n_packed)
        self.usage += usage
        return usage

    def record_failed_attempt(self, app: AppSpec, n_packed: int) -> StorageUsage:
        """Storage activity of an attempt that crashed mid-execution.

        The attempt fetched its inputs before dying (GETs plus the full
        transfer volume) but never wrote results, so a retry re-pays the
        transfer — on providers with a networking fee, flaky bursts cost
        strictly more per retry (paper Fig. 21's egress mechanism).
        """
        io = self.instance_io(app, n_packed)
        usage = StorageUsage(
            put_requests=0,
            get_requests=io.get_requests,
            transferred_mb=io.transferred_mb,
        )
        self.usage += usage
        return usage
