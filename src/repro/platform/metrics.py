"""Per-instance run records and burst-level results.

Timing definitions (all relative to the burst invocation instant ``t=0``):

* *scaling time* — start of the last instance's execution, i.e. the gap
  between the first and last instance starts **plus** the provisioning delay
  of the first instance (paper Sec. 1).
* *total service time* — completion of the last instance.
* *tail / median service time* — completion of the first 95% / 50% of
  instances (paper Sec. 3, "Evaluation Metrics").

Expense covers execution GB-seconds, per-request fees, storage operations,
and (on providers that charge it) networking egress — queueing/scaling delay
is never billed (paper Sec. 2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.sim.stats import percentile


@dataclass(slots=True)
class InstanceRecord:
    """Lifecycle timestamps of one function instance within a burst."""

    instance_id: int
    n_packed: int
    invoked_at: float = 0.0
    sched_done: Optional[float] = None
    built_at: Optional[float] = None
    shipped_at: Optional[float] = None
    exec_start: Optional[float] = None
    exec_end: Optional[float] = None
    provisioned_mb: int = 0
    warm_start: bool = False
    attempt: int = 1
    failed: bool = False  # crashed mid-execution (billed, then retried)
    timed_out: bool = False      # hit the execution cap (billed in full)
    correlated: bool = False     # killed by a correlated crash event
    persistent_fault: bool = False  # its function group is poisoned
    hedged: bool = False         # speculative duplicate of a straggler
    cancelled: bool = False      # abandoned (lost a hedge race); billed
                                 # for elapsed time only
    throttled_attempts: int = 0  # 429 rejections before this admission
    retry_delay_s: float = 0.0   # backoff that preceded this attempt

    @property
    def exec_seconds(self) -> float:
        if self.exec_start is None or self.exec_end is None:
            raise ValueError(f"instance {self.instance_id} never executed")
        return self.exec_end - self.exec_start

    @property
    def scheduling_delay(self) -> float:
        assert self.sched_done is not None
        return self.sched_done - self.invoked_at

    @property
    def startup_delay(self) -> float:
        """Build completion relative to invocation (builds start at invoke)."""
        assert self.built_at is not None
        return self.built_at - self.invoked_at

    @property
    def shipping_delay(self) -> float:
        """Transfer time from ship-ready (built AND placed) to arrival."""
        assert (
            self.shipped_at is not None
            and self.built_at is not None
            and self.sched_done is not None
        )
        return self.shipped_at - max(self.built_at, self.sched_done)

    def phase_durations(self) -> dict[str, float]:
        """Per-phase time breakdown, honouring the module's timing rules.

        Returns only the phases this record has completed, keyed
        ``sched`` / ``build`` / ``ship`` / ``exec``:

        * ``sched`` — placement search, ``sched_done - invoked_at``;
        * ``build`` — container build relative to invocation (builds start
          at invoke and run in parallel with placement),
          ``built_at - invoked_at``;
        * ``ship`` — transfer from ship-ready (built AND placed) to
          arrival, ``shipped_at - max(built_at, sched_done)``;
        * ``exec`` — ``exec_end - exec_start``.

        Warm starts report zero ``sched``/``ship`` (their timestamps
        coincide by construction). This single definition backs both the
        telemetry tracer's phase histograms and the burst-level
        :meth:`RunResult.breakdown`.
        """
        phases: dict[str, float] = {}
        if self.sched_done is not None:
            phases["sched"] = self.sched_done - self.invoked_at
        if self.built_at is not None:
            phases["build"] = self.built_at - self.invoked_at
        if (
            self.shipped_at is not None
            and self.built_at is not None
            and self.sched_done is not None
        ):
            phases["ship"] = self.shipped_at - max(self.built_at, self.sched_done)
        if self.exec_start is not None and self.exec_end is not None:
            phases["exec"] = self.exec_end - self.exec_start
        return phases


@dataclass(frozen=True)
class ExpenseBreakdown:
    """Dollar expense of a burst or serving run, by billing line item.

    ``keepalive_usd`` is the provisioned-concurrency-style charge for
    warm-idle instance time (see :mod:`repro.serving.warmpool`); it is zero
    for one-shot bursts and for serving runs without a keep-alive policy —
    pure cold starts never bill it.
    """

    compute_usd: float
    requests_usd: float
    storage_usd: float
    egress_usd: float
    keepalive_usd: float = 0.0

    @property
    def total_usd(self) -> float:
        return (
            self.compute_usd
            + self.requests_usd
            + self.storage_usd
            + self.egress_usd
            + self.keepalive_usd
        )

    def __add__(self, other: "ExpenseBreakdown") -> "ExpenseBreakdown":
        return ExpenseBreakdown(
            self.compute_usd + other.compute_usd,
            self.requests_usd + other.requests_usd,
            self.storage_usd + other.storage_usd,
            self.egress_usd + other.egress_usd,
            self.keepalive_usd + other.keepalive_usd,
        )


ZERO_EXPENSE = ExpenseBreakdown(0.0, 0.0, 0.0, 0.0)


@dataclass
class FaultStats:
    """Per-phase reliability accounting for one burst.

    ``wasted_billed_gb_seconds`` is the GB-seconds billed for attempts that
    produced no result (crashes, timeouts, cancelled hedge losers) — the
    dollar-denominated blast radius of packing under failures.
    """

    crashed_attempts: int = 0
    correlated_crashes: int = 0
    timed_out_attempts: int = 0
    throttled_attempts: int = 0
    throttle_rejections_final: int = 0  # groups dropped after 429 retries
    hedged_attempts: int = 0
    hedge_wins: int = 0
    retries_scheduled: int = 0
    retry_delay_s_total: float = 0.0
    wasted_billed_gb_seconds: float = 0.0
    total_billed_gb_seconds: float = 0.0

    @property
    def work_loss_ratio(self) -> float:
        """Fraction of billed GB-seconds that produced no result."""
        if self.total_billed_gb_seconds <= 0.0:
            return 0.0
        return self.wasted_billed_gb_seconds / self.total_billed_gb_seconds

    @property
    def failed_attempts(self) -> int:
        return self.crashed_attempts + self.timed_out_attempts

    def signature(self) -> tuple:
        """A hashable summary used by the determinism tests."""
        return (
            self.crashed_attempts,
            self.correlated_crashes,
            self.timed_out_attempts,
            self.throttled_attempts,
            self.hedged_attempts,
            self.hedge_wins,
            self.retries_scheduled,
            round(self.retry_delay_s_total, 9),
            round(self.wasted_billed_gb_seconds, 9),
        )


@dataclass
class RunResult:
    """Everything measured from one burst execution."""

    platform_name: str
    app_name: str
    concurrency: int
    packing_degree: int
    records: list[InstanceRecord] = field(default_factory=list)
    expense: ExpenseBreakdown = ZERO_EXPENSE
    lost_functions: int = 0  # functions whose every retry attempt crashed
    fault_stats: FaultStats = field(default_factory=FaultStats)

    # ------------------------------------------------------------------ #
    @property
    def n_instances(self) -> int:
        return len(self.records)

    @property
    def successful_records(self) -> list[InstanceRecord]:
        """Attempts that completed; service metrics are computed over these
        (failed attempts are still billed — see the billing model)."""
        return [
            r for r in self.records
            if not (r.failed or r.timed_out or r.cancelled)
        ]

    @property
    def n_failed_attempts(self) -> int:
        return sum(1 for r in self.records if r.failed or r.timed_out)

    @property
    def observed_failure_rate(self) -> float:
        """Failed attempts per executed attempt (drives adaptive packing)."""
        executed = [r for r in self.records if r.exec_start is not None]
        if not executed:
            return 0.0
        return self.n_failed_attempts / len(executed)

    def _starts(self) -> np.ndarray:
        return np.asarray([r.exec_start for r in self.records], dtype=float)

    def _ends(self) -> np.ndarray:
        ok = self.successful_records
        if not ok:
            raise ValueError("no instance completed successfully")
        return np.asarray([r.exec_end for r in ok], dtype=float)

    @property
    def scaling_time(self) -> float:
        """First-to-last start gap plus first-instance provisioning delay."""
        return float(self._starts().max())

    def service_time(self, merit: str = "total") -> float:
        """Service time under a figure of merit: total, tail, or median."""
        ends = self._ends()
        if merit == "total":
            return float(ends.max())
        if merit == "tail":
            return percentile(ends, 0.95)
        if merit == "median":
            return percentile(ends, 0.5)
        raise ValueError(f"unknown figure of merit {merit!r}")

    @property
    def mean_exec_seconds(self) -> float:
        return float(np.mean([r.exec_seconds for r in self.records]))

    @property
    def function_hours(self) -> float:
        """Sum of instance execution times, in hours (paper Fig. 12)."""
        return float(sum(r.exec_seconds for r in self.records)) / 3600.0

    def breakdown(self) -> dict[str, float]:
        """Mean per-instance scheduling / start-up / shipping delays."""
        durations = [r.phase_durations() for r in self.records]
        return {
            "scheduling": float(np.mean([d["sched"] for d in durations])),
            "startup": float(np.mean([d["build"] for d in durations])),
            "shipping": float(np.mean([d["ship"] for d in durations])),
        }

    def component_totals(self) -> dict[str, float]:
        """Critical-path view: when each stage finished for the last instance."""
        return {
            "scheduling": float(max(r.sched_done for r in self.records)),
            "startup": float(max(r.built_at for r in self.records)),
            "shipping": float(max(r.shipped_at for r in self.records)),
        }
