"""Burst invoker (the Step-Functions role).

Drives one burst of concurrent instance invocations through the full
pipeline: placement scheduling → container build → shipping → execution.
Also supports the *wave* dispatch pattern used by the Pywren baseline:
at most ``wave_size`` instances are provisioned cold; when an instance
finishes and logical functions remain, it is reused warm (execution only,
no build/ship), matching Pywren's instance-reuse optimization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cluster.registry import FunctionImage
from repro.interference.model import InterferenceModel
from repro.platform.billing import BillingModel
from repro.platform.container import ContainerPipeline
from repro.platform.instance import FunctionInstance
from repro.platform.metrics import InstanceRecord, RunResult
from repro.platform.providers import PlatformProfile
from repro.platform.scheduler import PlacementScheduler
from repro.platform.storage import ObjectStore
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.workloads.base import AppSpec


class FunctionTimeoutError(RuntimeError):
    """An instance exceeded the platform's maximum execution time."""


@dataclass(frozen=True)
class BurstSpec:
    """One burst request.

    ``concurrency`` is the number of logical functions ``C``; the burst
    spawns ``ceil(C / packing_degree)`` instances (the last instance may be
    partially packed). ``provisioned_mb`` defaults to the platform maximum,
    matching the paper's setup ("we use Lambdas with the maximum memory
    size"). ``wave_size`` caps simultaneously provisioned instances;
    ``build_factor``/``ship_factor`` discount the cold-start pipeline
    (used by the Pywren baseline), and ``exec_overhead`` multiplies
    execution wall time (e.g. Pywren's S3 (de)serialization inside the
    handler — it is billed, because it runs inside the function).
    """

    app: AppSpec
    concurrency: int
    packing_degree: int = 1
    provisioned_mb: Optional[int] = None
    wave_size: Optional[int] = None
    build_factor: float = 1.0
    ship_factor: float = 1.0
    exec_overhead: float = 1.0
    warm_dispatch_s: float = 0.05
    extra_io_mb_per_function: float = 0.0
    # Coefficient of variation of per-function work (input skew). A packed
    # instance finishes with its slowest function, so skew stretches packed
    # execution times beyond the homogeneous model's prediction.
    skew_cv: float = 0.0

    def __post_init__(self) -> None:
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if self.packing_degree < 1:
            raise ValueError("packing degree must be >= 1")
        if self.packing_degree > self.concurrency:
            raise ValueError(
                f"packing degree {self.packing_degree} exceeds concurrency "
                f"{self.concurrency}"
            )
        if self.wave_size is not None and self.wave_size < 1:
            raise ValueError("wave_size must be >= 1")
        if self.skew_cv < 0.0:
            raise ValueError("skew_cv must be non-negative")
        if self.build_factor <= 0.0 or self.ship_factor <= 0.0:
            raise ValueError("build/ship factors must be positive")
        if self.exec_overhead < 1.0:
            raise ValueError("exec_overhead must be >= 1.0")

    @property
    def n_instances(self) -> int:
        return math.ceil(self.concurrency / self.packing_degree)


class BurstInvoker:
    """Executes one :class:`BurstSpec` on a fresh simulation."""

    def __init__(
        self,
        sim: Simulator,
        profile: PlatformProfile,
        scheduler: PlacementScheduler,
        pipeline: ContainerPipeline,
        store: ObjectStore,
        rng: RandomStreams,
        interference: InterferenceModel,
        enforce_timeout: bool = True,
    ) -> None:
        self.sim = sim
        self.profile = profile
        self.scheduler = scheduler
        self.pipeline = pipeline
        self.store = store
        self.rng = rng
        self.interference = interference
        self.enforce_timeout = enforce_timeout
        self._records: list[InstanceRecord] = []
        self._pending_functions = 0
        self._lost_functions = 0

    # ------------------------------------------------------------------ #
    def begin(self, spec: BurstSpec, image: FunctionImage) -> None:
        """Enqueue the burst's invocations at the current simulation time.

        Does not drive the simulation — callers sharing one simulator
        across bursts (see :mod:`repro.platform.multitenant`) call
        ``begin`` per burst, run the simulator once, then ``collect``.
        """
        self._spec = spec
        self._image = image
        n_inst = spec.n_instances
        cold = n_inst if spec.wave_size is None else min(n_inst, spec.wave_size)
        self._concurrency_level = cold
        self._invoked_at = self.sim.now

        provisioned = spec.provisioned_mb or self.profile.max_memory_mb
        if provisioned > self.profile.max_memory_mb:
            raise ValueError(
                f"provisioned memory {provisioned} MB exceeds the platform "
                f"maximum {self.profile.max_memory_mb} MB"
            )
        remaining = spec.concurrency
        self._instances: dict[int, FunctionInstance] = {}
        for i in range(cold):
            n_packed = min(spec.packing_degree, remaining)
            remaining -= n_packed
            record = InstanceRecord(
                instance_id=i, n_packed=n_packed, invoked_at=self.sim.now,
                provisioned_mb=provisioned,
            )
            self._records.append(record)
            # Placement search and container build proceed in parallel: the
            # image server does not need the placement target to build.
            self.scheduler.request_placement(
                self.profile.cores_per_instance, provisioned, self._placed, record
            )
            self.pipeline.build(
                self._image, self._built, record, build_factor=spec.build_factor
            )
        self._pending_functions = remaining

    def collect(self) -> RunResult:
        """Assemble the result after the simulation has drained.

        Timestamps are normalized to the burst's own invocation instant so
        a burst submitted mid-simulation reports the same metrics as one
        submitted at t=0.
        """
        if self._invoked_at:
            offset = self._invoked_at
            for record in self._records:
                record.invoked_at -= offset
                for field_name in ("sched_done", "built_at", "shipped_at",
                                   "exec_start", "exec_end"):
                    value = getattr(record, field_name)
                    if value is not None:
                        setattr(record, field_name, value - offset)
            self._invoked_at = 0.0
        billing = BillingModel(self.profile)
        expense = billing.burst_expense(self._records, self.store.usage)
        return RunResult(
            platform_name=self.profile.name,
            app_name=self._spec.app.name,
            concurrency=self._spec.concurrency,
            packing_degree=self._spec.packing_degree,
            records=self._records,
            expense=expense,
            lost_functions=self._lost_functions,
        )

    def run(self, spec: BurstSpec, image: FunctionImage) -> RunResult:
        """Simulate the burst to completion and return its result."""
        self.begin(spec, image)
        self.sim.run()
        return self.collect()

    # ------------------------------------------------------------------ #
    def _placed(self, server, record: InstanceRecord) -> None:
        record.sched_done = self.sim.now
        self._instances[record.instance_id] = FunctionInstance(
            instance_id=record.instance_id,
            app=self._spec.app,
            n_packed=record.n_packed,
            server=server,
            provisioned_mb=record.provisioned_mb,
            cores=self.profile.cores_per_instance,
        )
        self._maybe_ship(record)

    def _built(self, record: InstanceRecord) -> None:
        record.built_at = self.sim.now
        self._maybe_ship(record)

    def _maybe_ship(self, record: InstanceRecord) -> None:
        # A container ships once it is both built and placed.
        if record.sched_done is None or record.built_at is None:
            return
        self.pipeline.ship(
            self._image, self._shipped, record, ship_factor=self._spec.ship_factor
        )

    def _shipped(self, record: InstanceRecord) -> None:
        record.shipped_at = self.sim.now
        self._start_execution(self._instances.pop(record.instance_id), record)

    def _cpu_share_penalty(self, record: InstanceRecord) -> float:
        """Memory-proportional CPU (Lambda semantics).

        Providers scale an instance's CPU share with its provisioned
        memory — at the platform maximum the instance has all its cores; a
        right-sized small instance gets a fraction of one. Each packed
        function needs roughly one core-equivalent
        (``max_memory / cores`` MB) to run at full speed. The penalty is
        expressed *relative to the max-memory configuration* the
        interference model was calibrated on, so it is exactly 1.0 whenever
        the burst provisions maximum memory (the paper's setup).
        """
        mem_per_core = self.profile.max_memory_mb / self.profile.cores_per_instance
        need_mb = record.n_packed * mem_per_core
        actual = max(1.0, need_mb / record.provisioned_mb)
        calibrated = max(1.0, need_mb / self.profile.max_memory_mb)
        return actual / calibrated

    def _skew_factor(self, n_packed: int) -> float:
        """Max of ``n_packed`` unit-mean lognormal work draws (input skew)."""
        cv = self._spec.skew_cv
        if cv <= 0.0:
            return 1.0
        sigma = float(np.sqrt(np.log1p(cv * cv)))
        draws = self.rng.stream("skew").lognormal(-0.5 * sigma * sigma, sigma, n_packed)
        return float(draws.max())

    def _start_execution(self, instance: FunctionInstance, record: InstanceRecord) -> None:
        record.exec_start = self.sim.now
        duration = (
            self.interference.execution_seconds(
                self._spec.app, record.n_packed, self._concurrency_level
            )
            * self.rng.lognormal_factor("exec", self.profile.exec_noise_sigma)
            * self._spec.exec_overhead
            * self._skew_factor(record.n_packed)
            * self._cpu_share_penalty(record)
        )
        if self.enforce_timeout and duration > self.profile.max_execution_seconds:
            raise FunctionTimeoutError(
                f"{self._spec.app.name}: instance {record.instance_id} would run "
                f"{duration:.0f}s > platform cap "
                f"{self.profile.max_execution_seconds:.0f}s "
                f"(packing degree {record.n_packed})"
            )
        if self.profile.failure_rate > 0.0:
            fail_stream = self.rng.stream("failure")
            if fail_stream.random() < self.profile.failure_rate:
                # Crash at a uniform point of the execution; the partial run
                # is billed (providers charge failed attempts), then retried.
                crash_after = duration * float(fail_stream.random())
                self.sim.schedule(crash_after, self._exec_failed, instance, record)
                return
        self.sim.schedule(duration, self._exec_done, instance, record)

    def _exec_failed(self, instance: FunctionInstance, record: InstanceRecord) -> None:
        record.exec_end = self.sim.now
        record.failed = True
        instance.release()  # the crash destroys the container
        if record.attempt > self.profile.max_retries:
            self._lost_functions += record.n_packed
            return
        retry = InstanceRecord(
            instance_id=len(self._records),
            n_packed=record.n_packed,
            invoked_at=self.sim.now,
            provisioned_mb=record.provisioned_mb,
            attempt=record.attempt + 1,
        )
        self._records.append(retry)
        # A retry is a fresh invocation: full placement + cold pipeline.
        self.scheduler.request_placement(
            self.profile.cores_per_instance, retry.provisioned_mb, self._placed, retry
        )
        self.pipeline.build(
            self._image, self._built, retry, build_factor=self._spec.build_factor
        )

    def _exec_done(self, instance: FunctionInstance, record: InstanceRecord) -> None:
        record.exec_end = self.sim.now
        self.store.record_instance(self._spec.app, record.n_packed)
        io_mb = self._spec.extra_io_mb_per_function
        if io_mb > 0.0:
            self.store.usage.transferred_mb += io_mb * record.n_packed
            self.store.usage.put_requests += record.n_packed
        if self._pending_functions > 0:
            self._reuse_warm(instance)
        else:
            instance.release()

    def _reuse_warm(self, instance: FunctionInstance) -> None:
        n_packed = min(self._spec.packing_degree, self._pending_functions)
        self._pending_functions -= n_packed
        record = InstanceRecord(
            instance_id=len(self._records),
            n_packed=n_packed,
            invoked_at=self.sim.now,
            provisioned_mb=instance.provisioned_mb,
            warm_start=True,
        )
        record.sched_done = self.sim.now
        warm = FunctionInstance(
            instance_id=record.instance_id,
            app=instance.app,
            n_packed=n_packed,
            server=instance.server,
            provisioned_mb=instance.provisioned_mb,
            cores=instance.cores,
        )
        self._records.append(record)
        self.sim.schedule(self._spec.warm_dispatch_s, self._warm_start, warm, record)

    def _warm_start(self, instance: FunctionInstance, record: InstanceRecord) -> None:
        record.built_at = self.sim.now
        record.shipped_at = self.sim.now
        self._start_execution(instance, record)
