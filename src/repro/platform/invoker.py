"""Burst invoker (the Step-Functions role).

As of the ``repro.engine`` extraction the entire per-instance lifecycle —
placement scheduling → container build → shipping → execution, plus wave
reuse, retries, hedging, throttling, billed timeouts, and fault draws —
lives in :class:`~repro.engine.burst.BurstDispatchKernel`, shared with the
serving and streaming dispatch paths. This module keeps the platform
layer's public API: :class:`BurstSpec`, :class:`FunctionTimeoutError`, and
:class:`BurstInvoker` (the kernel under its historical name, constructed
by :class:`~repro.platform.base.ServerlessPlatform` and
:class:`~repro.platform.multitenant.SharedFleet`).
"""

from __future__ import annotations

from repro.engine.burst import (
    BurstDispatchKernel,
    BurstSpec,
    FunctionTimeoutError,
)


class BurstInvoker(BurstDispatchKernel):
    """Executes one :class:`BurstSpec` on a fresh simulation.

    A thin platform-layer name for the engine's burst kernel; all behavior
    (including the ``begin`` / ``collect`` split used by multi-tenant
    callers) is inherited unchanged.
    """


__all__ = ["BurstInvoker", "BurstSpec", "FunctionTimeoutError"]
