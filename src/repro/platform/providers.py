"""Provider coefficient profiles.

Per the paper (Sec. 2.2), the *structure* of the scaling bottleneck is the
same on every platform — scheduling search, container start-up, container
shipping — while the coefficients are platform-specific and
application-independent. A :class:`PlatformProfile` captures those
coefficients plus the billing schedule.

The absolute values below are calibrated so that the simulated AWS profile
reproduces the paper's headline shapes (scaling time >80% of service time at
C=5000 for ~100 s functions; second-order-polynomial scaling; per-GB egress
fees on GCF/Azure but not AWS). They are inputs to the simulation, not
claims about the real providers' internals.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class PlatformProfile:
    """All platform-side coefficients for one serverless provider."""

    name: str

    # --- instance shape (AWS Lambda: 10 GB, 6 vCPUs at max memory) ---
    max_memory_mb: int = 10240
    cores_per_instance: int = 6
    max_execution_seconds: float = 900.0  # 15-minute Lambda cap

    # --- scheduling: request k of a burst costs sched_base + sched_search * k ---
    sched_base_s: float = 0.002
    sched_search_s: float = 1.6e-4
    # Decentralized control plane (Wukong/FaaSNet-style, paper Sec. 5):
    # shards split the placement load, but every placement pays a
    # synchronization cost that grows with the shard count.
    scheduler_shards: int = 1
    sched_sync_s: float = 8.0e-3

    # --- container / microVM build ---
    build_slots: int = 64             # concurrent builds on the image server
    build_rate_mb_s: float = 200.0    # download+install throughput per slot
    build_base_s: float = 0.25        # per-container fixed cost (microVM boot)
    build_cache_factor: float = 1.0   # <1 when the platform caches layers

    # --- container shipping over the builder's uplink ---
    uplink_gbps: float = 100.0
    ship_overhead_mb: float = 64.0    # microVM snapshot overhead on the wire

    # --- execution isolation ---
    exec_noise_sigma: float = 0.008       # lognormal sigma on instance exec time
    isolation_penalty: float = 1.0        # multiplier on co-runner interference
    concurrency_leak: float = 0.0         # exec slowdown per 1000 concurrent
                                          # instances (0 == perfect isolation)

    # --- reliability ---
    failure_rate: float = 0.0             # per-attempt probability an instance
                                          # crashes mid-execution (then retried)
    max_retries: int = 2                  # Lambda-style async retry count

    # --- billing ---
    gb_second_usd: float = 1.66667e-5     # AWS Lambda x86 rate
    # Warm-idle (provisioned-concurrency-style) rate: what a keep-alive
    # policy pays per GB-second of instance time spent idle in the warm
    # pool. Roughly 4x cheaper than on-demand execution on AWS; never
    # billed when instances are released cold (no keep-alive).
    keepalive_gb_second_usd: float = 4.1667e-6
    per_request_usd: float = 2.0e-7
    storage_put_usd: float = 5.0e-6       # S3 PUT
    storage_get_usd: float = 4.0e-7       # S3 GET
    egress_usd_per_gb: float = 0.0        # networking fee (GCF/Azure only)
    min_billed_memory_mb: int = 128
    # Billing fidelity ("Demystifying Serverless Costs"): real schedules
    # round durations up to a granularity (legacy Lambda: 100 ms; today:
    # 1 ms), impose a minimum billed duration, and may bill throttled
    # CPU shares at a multiplier. Defaults are the idealized exact-seconds
    # schedule every existing experiment was calibrated against.
    billing_granularity_s: float = 0.0    # 0 = exact (no rounding)
    min_billed_duration_s: float = 0.0    # floor on billed duration
    cpu_throttle_multiplier: float = 1.0  # billed-time stretch under
                                          # CPU-share throttling

    # --- datacenter fleet ---
    fleet_servers: int = 4096
    server_cores: int = 96
    server_memory_mb: int = 786432

    def with_overrides(self, **kwargs: object) -> "PlatformProfile":
        """A copy with selected coefficients replaced (for ablations)."""
        return replace(self, **kwargs)


AWS_LAMBDA = PlatformProfile(name="aws-lambda")

# Google and Azure show the same qualitative bottleneck with different
# coefficients (paper Figs. 1 and 21): somewhat slower scaling, and a per-GB
# networking fee that AWS does not charge — which is why packing saves *more*
# expense there (co-located functions share transfers).
GOOGLE_CLOUD_FUNCTIONS = PlatformProfile(
    name="google-cloud-functions",
    sched_base_s=0.0025,
    sched_search_s=1.9e-4,
    build_slots=48,
    build_rate_mb_s=170.0,
    build_base_s=0.35,
    uplink_gbps=80.0,
    gb_second_usd=2.5e-5,
    keepalive_gb_second_usd=6.25e-6,
    per_request_usd=4.0e-7,
    egress_usd_per_gb=0.12,
)

AZURE_FUNCTIONS = PlatformProfile(
    name="azure-functions",
    sched_base_s=0.003,
    sched_search_s=2.2e-4,
    build_slots=48,
    build_rate_mb_s=150.0,
    build_base_s=0.4,
    uplink_gbps=80.0,
    gb_second_usd=1.6e-5,
    keepalive_gb_second_usd=4.0e-6,
    per_request_usd=2.0e-7,
    egress_usd_per_gb=0.087,
)

PROVIDERS: dict[str, PlatformProfile] = {
    p.name: p for p in (AWS_LAMBDA, GOOGLE_CLOUD_FUNCTIONS, AZURE_FUNCTIONS)
}
