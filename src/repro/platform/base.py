"""The serverless platform facade.

:class:`ServerlessPlatform` is the public entry point of the substrate:
construct it from a :class:`~repro.platform.providers.PlatformProfile` and a
seed, then :meth:`run_burst` specs against it. Every burst runs on a fresh
simulation (serverless bursts are independent); the seed plus a per-run
counter keeps results reproducible yet non-identical across repetitions.

:meth:`measure_scaling_time` spawns no-op probe functions — ProPack's
application-independent scaling-model estimation (paper Sec. 2.2: evaluating
a scaling sample "does not require the execution of any actual function
code").
"""

from __future__ import annotations

from typing import Optional, Union

from repro.cluster.network import NetworkFabric
from repro.cluster.registry import FunctionImage, ImageRegistry
from repro.cluster.server import ServerPool
from repro.interference.model import InterferenceModel
from repro.platform.container import ContainerPipeline
from repro.platform.invoker import BurstInvoker, BurstSpec
from repro.platform.metrics import RunResult
from repro.platform.providers import PlatformProfile
from repro.platform.scheduler import PlacementScheduler
from repro.platform.storage import ObjectStore
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.telemetry.config import TelemetryConfig, TelemetrySession, resolve_session
from repro.workloads.base import AppSpec

#: No-op probe used for application-independent scaling measurements.
PROBE_APP = AppSpec(
    name="noop-probe",
    base_seconds=0.5,
    mem_mb=128,
    io_mb=0.0,
    io_shared_fraction=1.0,
    pressure_per_gb=0.0,
    description="empty function used to probe platform scaling behaviour",
)


class ServerlessPlatform:
    """One serverless provider, ready to execute bursts."""

    def __init__(
        self,
        profile: PlatformProfile,
        seed: int = 0,
        enforce_timeout: bool = True,
        telemetry: Union[TelemetryConfig, TelemetrySession, None] = None,
        kernel_mode: Optional[str] = "fluid",
    ) -> None:
        self.profile = profile
        self.seed = int(seed)
        self.enforce_timeout = enforce_timeout
        self.registry = ImageRegistry()
        #: One telemetry session spans every burst this platform runs:
        #: each burst becomes a process band in the exported Chrome trace.
        self.telemetry = resolve_session(telemetry)
        #: RNG/dispatch mode for every burst kernel this platform builds
        #: (see :data:`repro.engine.kernel.KERNEL_MODES`). The default
        #: ``"fluid"`` auto-falls back to the event-driven batched path on
        #: any burst the closed-form replay cannot represent exactly
        #: (faults, hedging, telemetry, ... — see
        #: :func:`repro.engine.fluid.fluid_ineligibility`), so results are
        #: byte-identical across all three modes.
        self.kernel_mode = kernel_mode
        self._run_counter = 0

    # ------------------------------------------------------------------ #
    def image_for(self, app: AppSpec) -> FunctionImage:
        """The registered image for ``app`` (auto-registering on first use)."""
        if app.name not in self.registry:
            self.registry.register(
                FunctionImage(
                    name=app.name,
                    code_mb=app.code_mb,
                    runtime_mb=app.runtime_mb,
                    dependencies_mb=app.dependencies_mb,
                )
            )
        return self.registry.get(app.name)

    def interference_model(self) -> InterferenceModel:
        return InterferenceModel(
            cores=self.profile.cores_per_instance,
            isolation_penalty=self.profile.isolation_penalty,
            concurrency_leak=self.profile.concurrency_leak,
        )

    # ------------------------------------------------------------------ #
    def run_burst(self, spec: BurstSpec, repetition: Optional[int] = None) -> RunResult:
        """Execute one burst on a fresh simulation and return its result."""
        if repetition is None:
            repetition = self._run_counter
            self._run_counter += 1
        rng = RandomStreams(self.seed).spawn(
            f"{spec.app.name}/C{spec.concurrency}/P{spec.packing_degree}/r{repetition}"
        )
        sim = Simulator()
        pool = ServerPool(
            self.profile.fleet_servers,
            self.profile.server_cores,
            self.profile.server_memory_mb,
        )
        network = NetworkFabric(sim, self.profile.uplink_gbps)
        if self.profile.scheduler_shards > 1:
            from repro.platform.scheduler_decentralized import DecentralizedScheduler

            scheduler = DecentralizedScheduler(
                sim,
                pool,
                self.profile.sched_base_s,
                self.profile.sched_search_s,
                shards=self.profile.scheduler_shards,
                sync_cost_s=self.profile.sched_sync_s,
            )
        else:
            scheduler = PlacementScheduler(
                sim,
                pool,
                self.profile.sched_base_s,
                self.profile.sched_search_s,
                metrics=self.telemetry.registry if self.telemetry else None,
            )
        pipeline = ContainerPipeline(
            sim,
            network,
            rng,
            build_slots=self.profile.build_slots,
            build_rate_mb_s=self.profile.build_rate_mb_s,
            build_base_s=self.profile.build_base_s,
            ship_overhead_mb=self.profile.ship_overhead_mb,
            build_cache_factor=self.profile.build_cache_factor,
        )
        instrumentation = None
        if self.telemetry is not None:
            instrumentation = self.telemetry.burst_instrumentation(
                sim,
                f"{spec.app.name} C={spec.concurrency} "
                f"P={spec.packing_degree} r{repetition}",
            )
        invoker = BurstInvoker(
            sim,
            self.profile,
            scheduler,
            pipeline,
            ObjectStore(),
            rng,
            self.interference_model(),
            enforce_timeout=self.enforce_timeout,
            telemetry=instrumentation,
            mode=self.kernel_mode,
        )
        return invoker.run(spec, self.image_for(spec.app))

    # ------------------------------------------------------------------ #
    def measure_scaling_time(
        self, concurrency: int, repetition: Optional[int] = None
    ) -> float:
        """Scaling time of a burst of ``concurrency`` no-op probe functions.

        Probes are small-memory instances, so this is cheap on the real
        platform too — it never executes application code (paper Sec. 2.2).
        """
        spec = BurstSpec(app=PROBE_APP, concurrency=concurrency, provisioned_mb=256)
        return self.run_burst(spec, repetition=repetition).scaling_time
