"""Typed remediation actions: the loop's entire vocabulary of change.

Every mutation the auto-remediation loop may make to a live serving run is
one of the frozen action types below — there is no "run arbitrary code"
escape hatch. Each action knows three things:

* how to **apply** itself through the :class:`Actuators` port (returning
  the inverse action that undoes it, which the scheduler holds for
  automatic rollback);
* how to **overlay** itself onto a :class:`~repro.remediation.shadow.ShadowSpec`
  so the shadow verifier can score the counterfactual without touching the
  live run;
* its **risk**: a static ordering used by the risk-ranked scheduler —
  targeted, easily-reversed actions (quarantine one domain) rank before
  global knob turns (repacking every future batch).

Actions are value objects: ``signature()`` feeds the seeded regression
goldens, and ``key()`` is the cooldown/dedup identity (two quarantines of
*different* domains are independent; two degree changes are not).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional, Protocol

if TYPE_CHECKING:  # annotation-only import (runtime would be cyclic)
    from repro.remediation.shadow import ShadowSpec


class Actuators(Protocol):
    """The live-run knobs an action may turn (implemented by the serving
    loop's remediation port)."""

    def get_degree(self) -> int: ...
    def set_degree(self, degree: int) -> None: ...
    def get_pool_capacity(self) -> Optional[int]: ...
    def set_pool_capacity(self, capacity: Optional[int]) -> None: ...
    def get_admission_limit(self) -> Optional[int]: ...
    def set_admission_limit(self, limit: int) -> None: ...
    def quarantined_domains(self) -> frozenset[int]: ...
    def quarantine_domain(self, domain: int) -> None: ...
    def release_domain(self, domain: int) -> None: ...


class RemediationAction(abc.ABC):
    """One typed, invertible change to a live serving run."""

    #: Stable action-kind slug (timeline records, metrics labels).
    kind: str = "action"
    #: Static risk rank in [0, 1]; lower applies first.
    risk: float = 1.0

    def key(self) -> str:
        """Cooldown / dedup identity (default: one slot per kind)."""
        return self.kind

    @abc.abstractmethod
    def signature(self) -> tuple:
        """Hashable value identity for goldens and timeline records."""

    @abc.abstractmethod
    def apply(self, actuators: Actuators) -> Optional["RemediationAction"]:
        """Apply to the live run; returns the inverse action (None = no-op)."""

    @abc.abstractmethod
    def overlay(self, spec: "ShadowSpec") -> "ShadowSpec":
        """The counterfactual shadow spec with this action in effect."""

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<{type(self).__name__} {self.signature()}>"


@dataclass(frozen=True, repr=False)
class SetPackingDegree(RemediationAction):
    """Re-target the streaming packing degree (ProPack's central knob)."""

    degree: int
    reason: str = ""

    kind = "set-degree"
    risk = 0.6  # global: every future batch changes shape

    def signature(self) -> tuple:
        return (self.kind, self.degree)

    def apply(self, actuators: Actuators) -> Optional[RemediationAction]:
        previous = actuators.get_degree()
        if previous == self.degree:
            return None
        actuators.set_degree(self.degree)
        return SetPackingDegree(previous, reason=f"rollback of {self.kind}")

    def overlay(self, spec: "ShadowSpec") -> "ShadowSpec":
        return replace(spec, degree=self.degree)


@dataclass(frozen=True, repr=False)
class ResizeWarmPool(RemediationAction):
    """Re-cap the warm pool (cost lever: idle sandboxes are billed)."""

    capacity: int
    reason: str = ""

    kind = "resize-pool"
    risk = 0.3  # reversible immediately; affects only cold/warm mix

    def signature(self) -> tuple:
        return (self.kind, self.capacity)

    def apply(self, actuators: Actuators) -> Optional[RemediationAction]:
        previous = actuators.get_pool_capacity()
        if previous == self.capacity:
            return None
        actuators.set_pool_capacity(self.capacity)
        if previous is None:
            return _UncapWarmPool(reason=f"rollback of {self.kind}")
        return ResizeWarmPool(previous, reason=f"rollback of {self.kind}")

    def overlay(self, spec: "ShadowSpec") -> "ShadowSpec":
        return replace(spec, pool_capacity=self.capacity)


@dataclass(frozen=True, repr=False)
class _UncapWarmPool(RemediationAction):
    """Inverse of capping a previously-uncapped pool (rollback only)."""

    reason: str = ""

    kind = "uncap-pool"
    risk = 0.3

    def signature(self) -> tuple:
        return (self.kind,)

    def apply(self, actuators: Actuators) -> Optional[RemediationAction]:
        previous = actuators.get_pool_capacity()
        if previous is None:
            return None
        actuators.set_pool_capacity(None)
        return ResizeWarmPool(previous, reason=f"rollback of {self.kind}")

    def overlay(self, spec: "ShadowSpec") -> "ShadowSpec":
        return replace(spec, pool_capacity=None)


@dataclass(frozen=True, repr=False)
class SetAdmissionLimit(RemediationAction):
    """Tighten or loosen the admission concurrency limit."""

    limit: int
    reason: str = ""

    kind = "set-admission-limit"
    risk = 0.4  # sheds real traffic, but sheds are accounted and bounded

    def signature(self) -> tuple:
        return (self.kind, self.limit)

    def apply(self, actuators: Actuators) -> Optional[RemediationAction]:
        previous = actuators.get_admission_limit()
        if previous is None:
            raise ValueError(
                "admission controller has no overridable concurrency limit"
            )
        if previous == self.limit:
            return None
        actuators.set_admission_limit(self.limit)
        return SetAdmissionLimit(previous, reason=f"rollback of {self.kind}")

    def overlay(self, spec: "ShadowSpec") -> "ShadowSpec":
        return replace(spec, admission_limit=self.limit)


@dataclass(frozen=True, repr=False)
class QuarantineDomain(RemediationAction):
    """Shift traffic off one fault domain entirely (poisoning cure)."""

    domain: int
    reason: str = ""

    kind = "quarantine-domain"
    risk = 0.2  # most targeted action: touches one domain, trivially undone

    def key(self) -> str:
        return f"{self.kind}:{self.domain}"

    def signature(self) -> tuple:
        return (self.kind, self.domain)

    def apply(self, actuators: Actuators) -> Optional[RemediationAction]:
        if self.domain in actuators.quarantined_domains():
            return None
        actuators.quarantine_domain(self.domain)
        return ReleaseDomain(self.domain, reason=f"rollback of {self.kind}")

    def overlay(self, spec: "ShadowSpec") -> "ShadowSpec":
        quarantined = tuple(sorted(set(spec.quarantined) | {self.domain}))
        return replace(spec, quarantined=quarantined)


@dataclass(frozen=True, repr=False)
class ReleaseDomain(RemediationAction):
    """Return a quarantined fault domain to routing."""

    domain: int
    reason: str = ""

    kind = "release-domain"
    risk = 0.5  # re-exposes traffic to a formerly bad domain

    def key(self) -> str:
        return f"{self.kind}:{self.domain}"

    def signature(self) -> tuple:
        return (self.kind, self.domain)

    def apply(self, actuators: Actuators) -> Optional[RemediationAction]:
        if self.domain not in actuators.quarantined_domains():
            return None
        actuators.release_domain(self.domain)
        return QuarantineDomain(self.domain, reason=f"rollback of {self.kind}")

    def overlay(self, spec: "ShadowSpec") -> "ShadowSpec":
        quarantined = tuple(sorted(set(spec.quarantined) - {self.domain}))
        return replace(spec, quarantined=quarantined)
