"""The remediation loop: detect → propose → verify → schedule, in sim time.

:class:`RemediationLoop` is the conductor. The serving loop hands it a
*port* (see :class:`RemediationPort`) — a narrow adapter over the live
run exposing read-only health signals, the actuation knobs, the materials
for shadow snapshots, and a fork seam for deterministic shadow seeds. On
every tick the loop:

1. checks applied actions for post-apply regression and rolls back,
2. asks each detector for anomalies on this tick's :class:`LoopView`,
3. maps detections to candidate actions via the proposers,
4. cooldown-filters, then shadow-verifies each surviving candidate
   against a baseline replay (both seeded from the live RNG's fork seam,
   one seed per tick, so comparisons are paired and byte-deterministic),
5. lets the risk-ranked scheduler apply the winners.

Every stage appends to the :class:`RemediationReport` timeline, which is
byte-identical per seed (the regression golden pins it) and exports to
JSONL for the CI artifact.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional, Protocol

from repro.remediation.actions import RemediationAction
from repro.remediation.detectors import (
    Detection,
    Detector,
    LoopView,
    default_detectors,
)
from repro.remediation.proposers import Proposer, default_proposers
from repro.remediation.scheduler import RiskRankedScheduler
from repro.remediation.shadow import (
    ShadowSpec,
    ShadowVerdict,
    ShadowVerifier,
    scenario_for_shadow,
)


class RemediationPort(Protocol):
    """What a live run must expose for the loop to drive it.

    Implemented by the serving loop's ``_RemediationPort``; the loop never
    touches ``_ServingRun`` directly.
    """

    # --- health signals -------------------------------------------------
    def violation_fraction(self, now: float) -> float: ...
    @property
    def backlog_depth(self) -> int: ...
    @property
    def backlog_threshold(self) -> int: ...
    @property
    def in_flight(self) -> int: ...
    @property
    def arrivals_total(self) -> int: ...
    @property
    def n_domains(self) -> int: ...
    def open_domains(self) -> tuple[int, ...]: ...
    def breaker_flaps(self) -> tuple[int, ...]: ...
    def crashes_by_domain(self) -> tuple[int, ...]: ...
    def poisoned_domains(self, now: float) -> tuple[int, ...]: ...

    # --- actuators (see actions.Actuators) ------------------------------
    def get_degree(self) -> int: ...
    def set_degree(self, degree: int) -> None: ...
    @property
    def max_degree(self) -> int: ...
    def get_pool_capacity(self) -> Optional[int]: ...
    def set_pool_capacity(self, capacity: Optional[int]) -> None: ...
    def get_admission_limit(self) -> Optional[int]: ...
    def set_admission_limit(self, limit: int) -> None: ...
    def quarantined_domains(self) -> frozenset[int]: ...
    def quarantine_domain(self, domain: int) -> None: ...
    def release_domain(self, domain: int) -> None: ...

    # --- shadow materials & determinism seams ---------------------------
    def shadow_materials(self) -> dict: ...
    def predict_exec_s(self, degree: int) -> float: ...
    def shadow_seed(self, label: str) -> int: ...
    @property
    def live_horizon_s(self) -> float: ...

    # --- telemetry ------------------------------------------------------
    @property
    def telemetry(self): ...
    def emit(self, stage: str, **fields) -> None: ...


@dataclass(frozen=True)
class RemediationConfig:
    """Knobs of the control loop itself."""

    tick_interval_s: float = 60.0
    shadow_horizon_s: float = 240.0
    max_detections_per_tick: int = 4
    max_actions_per_tick: int = 1
    cooldown_s: float = 300.0
    rollback_window_s: float = 600.0
    regression_margin: float = 0.10
    attainment_margin: float = 0.0    # shadow accept margin
    cost_margin: float = 0.02        # "cheaper at parity" threshold
    verify: bool = True              # False = apply proposals unverified
    min_arrival_rate_per_s: float = 0.05  # floor for the observed-rate estimate

    def __post_init__(self) -> None:
        if self.tick_interval_s <= 0.0:
            raise ValueError("tick_interval_s must be positive")
        if self.shadow_horizon_s <= 0.0:
            raise ValueError("shadow_horizon_s must be positive")
        if self.max_detections_per_tick < 1 or self.max_actions_per_tick < 1:
            raise ValueError("per-tick caps must be >= 1")
        if self.min_arrival_rate_per_s <= 0.0:
            raise ValueError("min_arrival_rate_per_s must be positive")


def _json_safe(value):
    if isinstance(value, float):
        return round(value, 9)
    if isinstance(value, tuple):
        return [_json_safe(v) for v in value]
    return value


@dataclass
class RemediationReport:
    """The full remediation timeline of one serving run.

    Byte-identical per seed — ``signature()`` is pinned by the regression
    golden — and exportable as JSONL (one event per line, time-ordered)
    for the CI artifact.
    """

    detections: list[Detection] = field(default_factory=list)
    proposals: list[tuple[float, tuple, str]] = field(default_factory=list)
    verdicts: list[ShadowVerdict] = field(default_factory=list)
    applications: list[tuple[float, tuple]] = field(default_factory=list)
    rollbacks: list[tuple[float, tuple, tuple]] = field(default_factory=list)
    ticks: int = 0

    @property
    def n_detections(self) -> int:
        return len(self.detections)

    @property
    def n_proposals(self) -> int:
        return len(self.proposals)

    @property
    def n_accepted(self) -> int:
        return sum(1 for v in self.verdicts if v.accepted)

    @property
    def n_applied(self) -> int:
        return len(self.applications)

    @property
    def n_rollbacks(self) -> int:
        return len(self.rollbacks)

    def signature(self) -> tuple:
        return (
            self.ticks,
            tuple(d.signature() for d in self.detections),
            tuple(
                (round(t, 9), sig, reason) for t, sig, reason in self.proposals
            ),
            tuple(v.signature() for v in self.verdicts),
            tuple((round(t, 9), sig) for t, sig in self.applications),
            tuple(
                (round(t, 9), inv, orig) for t, inv, orig in self.rollbacks
            ),
        )

    def timeline(self) -> list[dict]:
        """All stages merged into one time-ordered event list."""
        events: list[dict] = []
        for d in self.detections:
            events.append({
                "t": d.time, "stage": "detection", "kind": d.kind,
                "severity": d.severity, "detail": dict(d.detail),
            })
        for t, sig, reason in self.proposals:
            events.append({
                "t": t, "stage": "proposal", "action": list(sig),
                "reason": reason,
            })
        for v in self.verdicts:
            events.append({
                "t": v.time, "stage": "verdict", "action": list(v.action_signature),
                "accepted": v.accepted, "reason": v.reason,
                "baseline_attainment": v.baseline.attainment,
                "candidate_attainment": (
                    None if v.candidate is None else v.candidate.attainment
                ),
            })
        for t, sig in self.applications:
            events.append({"t": t, "stage": "apply", "action": list(sig)})
        for t, inv, orig in self.rollbacks:
            events.append({
                "t": t, "stage": "rollback", "action": list(inv),
                "rolled_back": list(orig),
            })
        stage_order = {
            "detection": 0, "proposal": 1, "verdict": 2, "apply": 3,
            "rollback": 4,
        }
        events.sort(key=lambda e: (e["t"], stage_order[e["stage"]]))
        return events

    def to_jsonl(self) -> str:
        """One JSON object per timeline event (the CI artifact format)."""
        lines = []
        for event in self.timeline():
            lines.append(json.dumps(
                {k: _json_safe(v) for k, v in event.items()}, sort_keys=True
            ))
        return "\n".join(lines) + ("\n" if lines else "")

    def summary(self) -> str:
        return (
            f"{self.ticks} ticks: {self.n_detections} detections → "
            f"{self.n_proposals} proposals → {self.n_accepted} accepted → "
            f"{self.n_applied} applied, {self.n_rollbacks} rolled back"
        )


class RemediationLoop:
    """Detector → proposer → verifier → scheduler, one instance per run.

    Construct once, pass to ``ServingSimulator(remediation=...)``; the
    serving loop calls :meth:`begin_run` and then :meth:`tick` every
    ``config.tick_interval_s`` of sim time. Reusable across runs (each
    ``begin_run`` resets all cross-tick state and starts a new report).
    """

    def __init__(
        self,
        config: Optional[RemediationConfig] = None,
        detectors: Optional[list[Detector]] = None,
        proposers: Optional[list[Proposer]] = None,
        verifier: Optional[ShadowVerifier] = None,
        scheduler: Optional[RiskRankedScheduler] = None,
    ) -> None:
        self.config = config if config is not None else RemediationConfig()
        self.detectors = (
            list(detectors) if detectors is not None else default_detectors()
        )
        self.proposers = (
            list(proposers) if proposers is not None else default_proposers()
        )
        self.verifier = verifier if verifier is not None else ShadowVerifier(
            horizon_s=self.config.shadow_horizon_s,
            attainment_margin=self.config.attainment_margin,
            cost_margin=self.config.cost_margin,
        )
        self.scheduler = scheduler if scheduler is not None else (
            RiskRankedScheduler(
                cooldown_s=self.config.cooldown_s,
                max_actions_per_tick=self.config.max_actions_per_tick,
                rollback_window_s=self.config.rollback_window_s,
                regression_margin=self.config.regression_margin,
            )
        )
        self.report = RemediationReport()
        self.port: Optional[RemediationPort] = None
        self._last_arrivals = 0
        self._last_tick_time = 0.0
        self._baseline_admission_limit: Optional[int] = None

    # ------------------------------------------------------------------ #
    def begin_run(self, port: RemediationPort) -> None:
        """Bind to one live run; resets every piece of cross-run state."""
        self.port = port
        self.report = RemediationReport()
        self.scheduler.reset()
        self._last_arrivals = 0
        self._last_tick_time = 0.0
        self._baseline_admission_limit = port.get_admission_limit()
        for detector in self.detectors:
            detector.reset()
            detector.bind(port.telemetry)

    # ------------------------------------------------------------------ #
    def _view(self, now: float) -> LoopView:
        port = self.port
        arrivals = port.arrivals_total
        dt = now - self._last_tick_time
        rate = (
            (arrivals - self._last_arrivals) / dt
            if dt > 0.0
            else self.config.min_arrival_rate_per_s
        )
        self._last_arrivals = arrivals
        self._last_tick_time = now
        return LoopView(
            now=now,
            violation_fraction=port.violation_fraction(now),
            backlog_depth=port.backlog_depth,
            backlog_threshold=port.backlog_threshold,
            in_flight=port.in_flight,
            arrival_rate_per_s=max(rate, self.config.min_arrival_rate_per_s),
            degree=port.get_degree(),
            max_degree=port.max_degree,
            pool_capacity=port.get_pool_capacity(),
            admission_limit=port.get_admission_limit(),
            baseline_admission_limit=self._baseline_admission_limit,
            n_domains=port.n_domains,
            open_domains=port.open_domains(),
            quarantined_domains=tuple(sorted(port.quarantined_domains())),
            breaker_flaps=port.breaker_flaps(),
            crashes_by_domain=port.crashes_by_domain(),
            predict_exec_s=port.predict_exec_s,
        )

    def _spec(self, view: LoopView) -> ShadowSpec:
        port = self.port
        materials = port.shadow_materials()
        scenario = scenario_for_shadow(
            materials["scenario"],
            port.poisoned_domains(view.now),
            self.config.shadow_horizon_s,
            port.live_horizon_s,
        )
        return ShadowSpec(
            profile=materials["profile"],
            app=materials["app"],
            exec_model=materials["exec_model"],
            config=materials["config"],
            scenario=scenario,
            retry_policy=materials["retry_policy"],
            arrival_rate_per_s=view.arrival_rate_per_s,
            degree=view.degree,
            batch_timeout_s=materials["batch_timeout_s"],
            warm_ttl_s=materials["warm_ttl_s"],
            pool_capacity=view.pool_capacity,
            admission_limit=view.admission_limit,
            quarantined=view.quarantined_domains,
            breaker_failure_threshold=materials["breaker_failure_threshold"],
            breaker_recovery_s=materials["breaker_recovery_s"],
        )

    # ------------------------------------------------------------------ #
    def tick(self, now: float) -> int:
        """One control-loop pass; returns the number of actions applied."""
        if self.port is None:
            raise RuntimeError("begin_run() must be called before tick()")
        port = self.port
        self.report.ticks += 1
        view = self._view(now)

        # 1. Post-apply watch: undo our own regressions first. An inverse
        # can have become invalid since apply time (e.g. re-quarantining
        # would strand the last routable domain after other rollbacks);
        # such an inverse is skipped, never allowed to kill the live run.
        for record in self.scheduler.due_rollbacks(now, view.violation_fraction):
            try:
                record.inverse.apply(port)
            except ValueError:
                continue
            self.report.rollbacks.append(
                (now, record.inverse.signature(), record.action.signature())
            )
            port.emit(
                "rollback",
                action=str(record.action.kind),
                violation=round(view.violation_fraction, 9),
            )
        if self.report.rollbacks and self.report.rollbacks[-1][0] == now:
            view = self._refresh_view(view)

        # 2. Detect.
        detections: list[Detection] = []
        for detector in self.detectors:
            detections.extend(detector.observe(view))
        detections = detections[: self.config.max_detections_per_tick]
        for detection in detections:
            self.report.detections.append(detection)
            port.emit(
                "detection",
                detector=detection.kind,
                severity=round(detection.severity, 9),
            )
        if not detections:
            return 0

        # 3. Propose (dedup by key, first proposer wins).
        candidates: list[RemediationAction] = []
        seen: set[str] = set()
        for detection in detections:
            for proposer in self.proposers:
                if detection.kind not in proposer.kinds:
                    continue
                for action in proposer.propose(detection, view):
                    if action.key() in seen:
                        continue
                    seen.add(action.key())
                    candidates.append(action)
        for action in candidates:
            self.report.proposals.append(
                (now, action.signature(), getattr(action, "reason", ""))
            )
            port.emit("proposal", action=action.kind)
        # Cooldown-gate *before* paying for shadow replays.
        eligible = [
            a for a in candidates if self.scheduler.ready(a.key(), now)
        ]
        if not eligible:
            return 0

        # 4. Shadow-verify against one paired baseline replay per tick.
        if self.config.verify:
            spec = self._spec(view)
            seed = port.shadow_seed(f"remediation/tick{self.report.ticks}")
            baseline = self.verifier.score(spec, seed)
            accepted = []
            for action in eligible:
                verdict = self.verifier.verify(action, spec, seed, baseline, now)
                self.report.verdicts.append(verdict)
                port.emit(
                    "verdict",
                    action=action.kind,
                    accepted=verdict.accepted,
                    reason=verdict.reason,
                )
                if verdict.accepted:
                    accepted.append(action)
        else:
            accepted = eligible

        # 5. Apply, risk-ranked and capped. The live knobs may have moved
        # since the proposal snapshot (this tick's own rollbacks); an
        # action the actuators now refuse is dropped, not fatal.
        applied = 0
        for action in self.scheduler.select(accepted, now):
            try:
                inverse = action.apply(port)
            except ValueError:
                continue
            self.scheduler.on_applied(
                action, inverse, now, view.violation_fraction
            )
            self.report.applications.append((now, action.signature()))
            port.emit("apply", action=action.kind)
            applied += 1
        return applied

    def _refresh_view(self, view: LoopView) -> LoopView:
        """Re-snapshot knob state after rollbacks (health fields are
        unchanged within one tick; rate bookkeeping is not re-advanced)."""
        port = self.port
        from dataclasses import replace
        return replace(
            view,
            degree=port.get_degree(),
            pool_capacity=port.get_pool_capacity(),
            admission_limit=port.get_admission_limit(),
            quarantined_domains=tuple(sorted(port.quarantined_domains())),
        )
