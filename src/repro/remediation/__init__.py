"""Closed-loop auto-remediation for the serving stack.

A detector → proposer → shadow-verifier → risk-ranked-scheduler control
loop that runs *inside* sim time on top of the telemetry streams, turning
the static protection of ``repro.resilience`` into an operator-free
self-healing serving stack. See ``docs/REMEDIATION.md``.

Layering: this package may import telemetry, resilience, extensions, and
serving; nothing below it (``repro.engine`` in particular) may import it —
``tests/test_engine_layering.py`` enforces the rule.
"""

from repro.remediation.actions import (
    Actuators,
    QuarantineDomain,
    ReleaseDomain,
    RemediationAction,
    ResizeWarmPool,
    SetAdmissionLimit,
    SetPackingDegree,
)
from repro.remediation.detectors import (
    BacklogGrowthDetector,
    BreakerFlapDetector,
    Detection,
    Detector,
    DomainPoisonDetector,
    LoopView,
    RecoveryDetector,
    SLOBurnDetector,
    default_detectors,
)
from repro.remediation.loop import (
    RemediationConfig,
    RemediationLoop,
    RemediationPort,
    RemediationReport,
)
from repro.remediation.proposers import (
    AdmissionProposer,
    PackingDegreeProposer,
    Proposer,
    QuarantineProposer,
    WarmPoolProposer,
    default_proposers,
)
from repro.remediation.scheduler import AppliedAction, RiskRankedScheduler
from repro.remediation.shadow import (
    ShadowScore,
    ShadowSpec,
    ShadowVerdict,
    ShadowVerifier,
    scenario_for_shadow,
)

__all__ = [
    "Actuators",
    "AdmissionProposer",
    "AppliedAction",
    "BacklogGrowthDetector",
    "BreakerFlapDetector",
    "Detection",
    "Detector",
    "DomainPoisonDetector",
    "LoopView",
    "PackingDegreeProposer",
    "Proposer",
    "QuarantineDomain",
    "QuarantineProposer",
    "RecoveryDetector",
    "ReleaseDomain",
    "RemediationAction",
    "RemediationConfig",
    "RemediationLoop",
    "RemediationPort",
    "RemediationReport",
    "ResizeWarmPool",
    "RiskRankedScheduler",
    "SLOBurnDetector",
    "SetAdmissionLimit",
    "SetPackingDegree",
    "ShadowScore",
    "ShadowSpec",
    "ShadowVerdict",
    "ShadowVerifier",
    "WarmPoolProposer",
    "default_detectors",
    "default_proposers",
    "scenario_for_shadow",
]
