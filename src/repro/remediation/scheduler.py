"""Risk-ranked action scheduling: cooldowns, caps, and automatic rollback.

Accepted actions are not fired blindly: the scheduler orders them by
static risk (targeted quarantines before global knob turns), enforces a
per-key cooldown so the loop cannot thrash one knob every tick, caps how
many actions land per tick, and keeps each applied action's inverse for a
post-apply watch window. If the live violation fraction regresses past the
at-apply level by more than ``regression_margin`` inside
``rollback_window_s``, the inverse is applied and the key enters an
extended cooldown — the loop's own changes are held to the same standard
as the faults it fights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.remediation.actions import RemediationAction


@dataclass
class AppliedAction:
    """One applied action under post-apply watch."""

    action: RemediationAction
    inverse: Optional[RemediationAction]
    applied_at: float
    baseline_violation: float    # live violation fraction at apply time
    rolled_back: bool = False


@dataclass
class RiskRankedScheduler:
    """Order, gate, and watch accepted actions."""

    cooldown_s: float = 300.0
    max_actions_per_tick: int = 1
    rollback_window_s: float = 600.0
    regression_margin: float = 0.10
    rollback_cooldown_factor: float = 2.0

    _cooldown_until: dict[str, float] = field(default_factory=dict, repr=False)
    _watch: list[AppliedAction] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.cooldown_s < 0.0 or self.rollback_window_s < 0.0:
            raise ValueError("cooldowns/windows must be non-negative")
        if self.max_actions_per_tick < 1:
            raise ValueError("max_actions_per_tick must be >= 1")
        if self.regression_margin < 0.0:
            raise ValueError("regression_margin must be non-negative")

    def reset(self) -> None:
        self._cooldown_until.clear()
        self._watch.clear()

    # ------------------------------------------------------------------ #
    def ready(self, key: str, now: float) -> bool:
        """Is ``key`` outside its cooldown window?"""
        return now >= self._cooldown_until.get(key, 0.0)

    def select(
        self, actions: list[RemediationAction], now: float
    ) -> list[RemediationAction]:
        """Risk-ranked, cooldown-gated, deduped, capped selection."""
        chosen: list[RemediationAction] = []
        seen: set[str] = set()
        ranked = sorted(actions, key=lambda a: (a.risk, a.kind, a.signature()))
        for action in ranked:
            key = action.key()
            if key in seen or not self.ready(key, now):
                continue
            seen.add(key)
            chosen.append(action)
            if len(chosen) >= self.max_actions_per_tick:
                break
        return chosen

    # ------------------------------------------------------------------ #
    def on_applied(
        self,
        action: RemediationAction,
        inverse: Optional[RemediationAction],
        now: float,
        violation: float,
    ) -> None:
        self._cooldown_until[action.key()] = now + self.cooldown_s
        self._watch.append(AppliedAction(
            action=action,
            inverse=inverse,
            applied_at=now,
            baseline_violation=violation,
        ))

    def due_rollbacks(self, now: float, violation: float) -> list[AppliedAction]:
        """Watched actions whose post-apply health regressed.

        Regression means the live violation fraction moved *above* the
        at-apply level by more than the margin while the action was inside
        its watch window. Returned records are marked rolled back and their
        keys put on the extended cooldown; the caller applies the inverses.
        """
        due: list[AppliedAction] = []
        for record in self._watch:
            if record.rolled_back or record.inverse is None:
                continue
            age = now - record.applied_at
            if not 0.0 < age <= self.rollback_window_s:
                continue
            if violation > record.baseline_violation + self.regression_margin:
                record.rolled_back = True
                self._cooldown_until[record.action.key()] = (
                    now + self.rollback_cooldown_factor * self.cooldown_s
                )
                due.append(record)
        self._watch = [
            r for r in self._watch
            if not r.rolled_back and now - r.applied_at <= self.rollback_window_s
        ]
        return due

    @property
    def watched(self) -> int:
        return len(self._watch)
