"""Proposers: map detections to candidate :class:`RemediationAction`s.

A proposer is pure policy — "given this anomaly and this snapshot, what
would plausibly help?" — and makes no promises of improvement; every
candidate still has to survive the shadow verifier and the scheduler's
cooldowns. Keeping proposal heuristics cheap and optimistic while
verification is strict is the point of the pipeline: detectors may be
twitchy, proposers naive, and the run is still protected.
"""

from __future__ import annotations

import abc
import math

from repro.remediation.actions import (
    QuarantineDomain,
    ReleaseDomain,
    RemediationAction,
    ResizeWarmPool,
    SetAdmissionLimit,
    SetPackingDegree,
)
from repro.remediation.detectors import Detection, LoopView


class Proposer(abc.ABC):
    """One detection-kind → candidate-action mapping."""

    name = "proposer"
    #: Detection kinds this proposer responds to.
    kinds: tuple[str, ...] = ()

    @abc.abstractmethod
    def propose(self, detection: Detection, view: LoopView) -> list[RemediationAction]:
        """Candidate actions for ``detection`` (may be empty)."""


class PackingDegreeProposer(Proposer):
    """Pack deeper when the backlog outruns the dispatch rate.

    ProPack's core trade: a deeper degree amortizes cold starts and
    multiplies per-dispatch throughput at some per-function slowdown.
    When requests queue faster than batches drain, deeper packing is the
    first lever worth trying.
    """

    name = "packing-degree"
    kinds = ("slo-burn", "backlog-growth")

    def __init__(self, growth_factor: float = 1.5) -> None:
        if growth_factor <= 1.0:
            raise ValueError("growth_factor must be > 1")
        self.growth_factor = float(growth_factor)

    def propose(self, detection: Detection, view: LoopView) -> list[RemediationAction]:
        if view.backlog_depth <= view.backlog_threshold:
            return []
        if view.degree >= view.max_degree:
            return []
        target = min(
            view.max_degree, math.ceil(view.degree * self.growth_factor)
        )
        return [SetPackingDegree(
            target, reason=f"{detection.kind}: backlog {view.backlog_depth}"
        )]


class WarmPoolProposer(Proposer):
    """Size the warm pool to the observed load (grow in storms, shrink after).

    Little's-law sizing: at arrival rate λ, per-batch service time S(d) and
    degree d, about ``λ·S(d)/d`` dispatches are concurrently in flight;
    ``headroom`` covers retries and arrival burstiness.
    """

    name = "warm-pool"
    kinds = ("slo-burn", "backlog-growth", "recovered")

    def __init__(self, headroom: float = 1.5) -> None:
        if headroom < 1.0:
            raise ValueError("headroom must be >= 1")
        self.headroom = float(headroom)

    def _target(self, view: LoopView) -> int:
        service_s = view.predict_exec_s(view.degree)
        concurrency = view.arrival_rate_per_s * service_s / max(1, view.degree)
        return max(1, math.ceil(concurrency * self.headroom) + 1)

    def propose(self, detection: Detection, view: LoopView) -> list[RemediationAction]:
        if view.pool_capacity is None or view.predict_exec_s is None:
            return []
        target = self._target(view)
        if detection.kind == "recovered":
            # Shrink only well below capacity: idle sandboxes burn cost.
            if target < view.pool_capacity / self.headroom:
                return [ResizeWarmPool(target, reason="recovered: shrink pool")]
            return []
        if target > view.pool_capacity:
            return [ResizeWarmPool(
                target, reason=f"{detection.kind}: pool under-provisioned"
            )]
        return []


class AdmissionProposer(Proposer):
    """Tighten admission under burn; loosen it back once health returns.

    The loosening path answers to the :class:`RecoveryDetector`, which only
    fires while the live limit sits below its run-start baseline — the loop
    never loosens past what the operator originally configured.
    """

    name = "admission"
    kinds = ("slo-burn", "recovered")

    def __init__(
        self, tighten_factor: float = 0.7, min_limit: int = 4
    ) -> None:
        if not 0.0 < tighten_factor < 1.0:
            raise ValueError("tighten_factor must be in (0, 1)")
        if min_limit < 1:
            raise ValueError("min_limit must be >= 1")
        self.tighten_factor = float(tighten_factor)
        self.min_limit = int(min_limit)

    def propose(self, detection: Detection, view: LoopView) -> list[RemediationAction]:
        limit = view.admission_limit
        if limit is None:
            return []
        if detection.kind == "recovered":
            baseline = view.baseline_admission_limit
            if baseline is None or limit >= baseline:
                return []
            target = min(baseline, math.ceil(limit / self.tighten_factor))
            return [SetAdmissionLimit(target, reason="recovered: loosen")]
        target = max(self.min_limit, math.floor(limit * self.tighten_factor))
        if target >= limit:
            return []
        return [SetAdmissionLimit(
            target, reason=f"slo-burn at limit {limit}"
        )]


class QuarantineProposer(Proposer):
    """Shift traffic off a poisoned or flapping fault domain.

    Never proposes quarantining the last routable domain — that guard also
    lives in ``CircuitBreakerBank.quarantine`` itself, but refusing here
    keeps the timeline free of doomed proposals. On recovery it proposes
    releasing quarantined domains and lets the shadow verifier judge
    whether each one actually healed: the shadow scenario bakes the
    still-poisoned set into ``initially_poisoned``, so releasing a domain
    that is still sick loses the counterfactual and is rejected.
    """

    name = "quarantine"
    kinds = ("domain-poisoning", "breaker-flap", "recovered")

    def propose(self, detection: Detection, view: LoopView) -> list[RemediationAction]:
        if detection.kind == "recovered":
            return [
                ReleaseDomain(domain, reason="recovered: re-admit domain")
                for domain in view.quarantined_domains
            ]
        domain = detection.get("domain")
        if domain is None or domain in view.quarantined_domains:
            return []
        if len(view.quarantined_domains) + 1 >= view.n_domains:
            return []
        return [QuarantineDomain(
            int(domain), reason=f"{detection.kind} on domain {domain}"
        )]


def default_proposers() -> list[Proposer]:
    """The standard playbook, one proposer per remediation family."""
    return [
        QuarantineProposer(),
        AdmissionProposer(),
        WarmPoolProposer(),
        PackingDegreeProposer(),
    ]
