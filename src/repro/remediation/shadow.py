"""Shadow verification: replay a proposed action before trusting it.

The verifier is what separates this loop from a bag of if-statements: a
proposed action is *never* applied on heuristic grounds alone. Instead the
loop captures a :class:`ShadowSpec` — a frozen snapshot of the live run's
platform, workload, fault scenario (with the currently-poisoned domains
baked in via ``FaultScenario.initially_poisoned``), protection knobs, and
observed arrival rate — and replays a short-horizon serving simulation
twice: once as-is (the baseline) and once with the candidate action
overlaid. The action is accepted only if the counterfactual wins.

Determinism: the shadow seed comes from ``DispatchKernel.fork`` on the
live run's RNG streams — spawning derives a child generator family
*without consuming draws*, so verification is byte-deterministic per seed
and the live run is bit-identical with the loop on or off (until an action
is actually applied). Baseline and candidates share one seed per tick, so
the comparison is paired: both see the same arrival schedule and fault
draws wherever their trajectories have not yet diverged.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # annotation-only imports
    from repro.core.models import ExecutionTimeModel
    from repro.faults.retry import RetryPolicy
    from repro.faults.scenario import FaultScenario
    from repro.platform.providers import PlatformProfile
    from repro.remediation.actions import RemediationAction
    from repro.serving.service import ServingConfig
    from repro.workloads.base import AppSpec


def _round(value):
    return round(value, 9) if isinstance(value, float) else value


@dataclass(frozen=True)
class ShadowSpec:
    """Frozen snapshot of the live run, sufficient to clone it briefly."""

    profile: "PlatformProfile"
    app: "AppSpec"
    exec_model: "ExecutionTimeModel"
    config: "ServingConfig"
    scenario: Optional["FaultScenario"]     # already carries initially_poisoned
    retry_policy: Optional["RetryPolicy"]
    arrival_rate_per_s: float
    degree: int
    batch_timeout_s: float
    warm_ttl_s: float
    pool_capacity: Optional[int]
    admission_limit: Optional[int]
    quarantined: tuple[int, ...] = ()
    breaker_failure_threshold: Optional[int] = None  # None = no breaker bank
    breaker_recovery_s: float = 30.0


@dataclass(frozen=True)
class ShadowScore:
    """What one shadow replay measured."""

    attainment: float          # windowed P99 attainment
    cost_per_completed: float  # USD per completed request
    completed: int

    def signature(self) -> tuple:
        return (
            _round(self.attainment),
            _round(self.cost_per_completed),
            self.completed,
        )


@dataclass(frozen=True)
class ShadowVerdict:
    """The verifier's ruling on one proposed action."""

    time: float
    action_kind: str
    action_signature: tuple
    accepted: bool
    reason: str
    baseline: ShadowScore
    candidate: Optional[ShadowScore]  # None when rejected before replay

    def signature(self) -> tuple:
        return (
            _round(self.time),
            self.action_kind,
            self.action_signature,
            self.accepted,
            self.reason,
            self.baseline.signature(),
            None if self.candidate is None else self.candidate.signature(),
        )


class ShadowVerifier:
    """Score candidate actions in cloned short-horizon simulations."""

    def __init__(
        self,
        horizon_s: float = 240.0,
        attainment_margin: float = 0.0,
        attainment_tolerance: float = 0.005,
        cost_margin: float = 0.02,
        completion_floor: float = 0.5,
    ) -> None:
        if horizon_s <= 0.0:
            raise ValueError("horizon must be positive")
        if not 0.0 <= completion_floor <= 1.0:
            raise ValueError("completion_floor must be in [0, 1]")
        self.horizon_s = float(horizon_s)
        self.attainment_margin = float(attainment_margin)
        self.attainment_tolerance = float(attainment_tolerance)
        self.cost_margin = float(cost_margin)
        self.completion_floor = float(completion_floor)

    # ------------------------------------------------------------------ #
    def score(self, spec: ShadowSpec, seed: int) -> ShadowScore:
        """One shadow replay of ``spec``; deterministic given (spec, seed)."""
        # Local imports: repro.serving imports nothing from this package,
        # but keeping the dependency one-directional at module-load time
        # makes the layering obvious (and cheap when the loop never fires).
        from repro.extensions.streaming import StreamingPolicy
        from repro.resilience import ResiliencePolicy
        from repro.resilience.admission import ConcurrencyLimitAdmission
        from repro.resilience.breaker import CircuitBreakerBank
        from repro.serving.arrivals import PoissonProcess
        from repro.serving.service import ServingSimulator
        from repro.serving.warmpool import FixedTTL, WarmPool

        pool = WarmPool(FixedTTL(spec.warm_ttl_s))
        pool.set_capacity(spec.pool_capacity)

        admission = None
        if spec.admission_limit is not None:
            admission = ConcurrencyLimitAdmission(max(1, spec.admission_limit))
        breakers = None
        if spec.breaker_failure_threshold is not None:
            breakers = CircuitBreakerBank(
                spec.config.fault_domains,
                rng=np.random.default_rng(seed),
                failure_threshold=spec.breaker_failure_threshold,
                recovery_s=spec.breaker_recovery_s,
            )
            for domain in spec.quarantined:
                breakers.quarantine(domain)
        resilience = None
        if admission is not None or breakers is not None:
            resilience = ResiliencePolicy(admission=admission, breakers=breakers)

        sim = ServingSimulator(
            spec.profile,
            spec.app,
            spec.exec_model,
            pool,
            config=spec.config,
            resilience=resilience,
            scenario=spec.scenario,
            retry_policy=spec.retry_policy,
            seed=seed,
        )
        run = sim.run(
            PoissonProcess(spec.arrival_rate_per_s),
            StreamingPolicy(
                degree=spec.degree, batch_timeout_s=spec.batch_timeout_s
            ),
            self.horizon_s,
        )
        return ShadowScore(
            attainment=run.windowed_p99_attainment(),
            cost_per_completed=run.cost_per_completed_request_usd(),
            completed=run.n_completed,
        )

    # ------------------------------------------------------------------ #
    def verify(
        self,
        action: "RemediationAction",
        spec: ShadowSpec,
        seed: int,
        baseline: ShadowScore,
        now: float,
    ) -> ShadowVerdict:
        """Rule on ``action``: does its counterfactual beat the baseline?"""
        candidate_spec = action.overlay(spec)
        if candidate_spec == spec:
            return ShadowVerdict(
                time=now,
                action_kind=action.kind,
                action_signature=action.signature(),
                accepted=False,
                reason="no-op overlay",
                baseline=baseline,
                candidate=None,
            )
        candidate = self.score(candidate_spec, seed)
        accepted, reason = self._rule(baseline, candidate)
        return ShadowVerdict(
            time=now,
            action_kind=action.kind,
            action_signature=action.signature(),
            accepted=accepted,
            reason=reason,
            baseline=baseline,
            candidate=candidate,
        )

    def _rule(
        self, baseline: ShadowScore, candidate: ShadowScore
    ) -> tuple[bool, str]:
        if candidate.completed == 0 and baseline.completed > 0:
            return False, "candidate completed nothing"
        # "Cheaper" by strangling throughput is not a win: per-completed
        # cost normalises away shed work, so guard the completion count.
        if candidate.completed < self.completion_floor * baseline.completed:
            return False, "completed-count collapse"
        gain = candidate.attainment - baseline.attainment
        if gain > self.attainment_margin:
            return True, f"attainment {gain:+.3f}"
        cheaper = (
            baseline.cost_per_completed > 0.0
            and candidate.cost_per_completed
            < baseline.cost_per_completed * (1.0 - self.cost_margin)
        )
        if gain >= -self.attainment_tolerance and cheaper:
            return True, "cheaper at attainment parity"
        return False, f"no improvement ({gain:+.3f})"


def scenario_for_shadow(
    scenario: Optional["FaultScenario"],
    poisoned: tuple[int, ...],
    shadow_horizon_s: float,
    live_horizon_s: float,
) -> Optional["FaultScenario"]:
    """The live scenario re-based for a short replay.

    Currently-poisoned domains become ``initially_poisoned`` (the shadow
    starts inside the storm, not before it), and the correlated-burst count
    is scaled to the horizon ratio so a short replay is not proportionally
    stormier than the live run.
    """
    if scenario is None:
        return None
    bursts = scenario.correlated_bursts
    if bursts > 0 and live_horizon_s > 0.0:
        bursts = max(1, round(bursts * shadow_horizon_s / live_horizon_s))
    return replace(
        scenario,
        initially_poisoned=tuple(sorted(poisoned)),
        correlated_bursts=bursts,
    )
