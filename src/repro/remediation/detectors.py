"""Detectors: turn telemetry streams into typed :class:`Detection` events.

Detectors are the loop's senses. Each one watches a single failure
signature through the :class:`LoopView` — an immutable per-tick snapshot
the serving port assembles from its own counters, the metrics registry,
and the circuit-breaker bank — and, where a live telemetry session is
present, subscribes to the EventBus for per-event evidence (crash events
carry their fault domain since this PR).

All detector state is plain Python updated only inside ``observe``; no
randomness is drawn, so detections are byte-deterministic per seed and the
full detection stream can be pinned by a golden.
"""

from __future__ import annotations

import abc
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional


def _round(value):
    return round(value, 9) if isinstance(value, float) else value


@dataclass(frozen=True)
class Detection:
    """One detected anomaly, with enough detail to propose a fix."""

    time: float
    kind: str          # "slo-burn" | "backlog-growth" | "breaker-flap"
                       # | "domain-poisoning" | "recovered"
    severity: float    # [0, 1]; proposers may scale their response by it
    detail: tuple[tuple[str, object], ...] = ()

    def get(self, key: str, default=None):
        for k, v in self.detail:
            if k == key:
                return v
        return default

    def signature(self) -> tuple:
        return (
            _round(self.time),
            self.kind,
            _round(self.severity),
            tuple((k, _round(v)) for k, v in self.detail),
        )


@dataclass(frozen=True)
class LoopView:
    """Immutable snapshot of the live run at one remediation tick."""

    now: float
    violation_fraction: float      # recent windowed SLO violation share
    backlog_depth: int
    backlog_threshold: int
    in_flight: int
    arrival_rate_per_s: float      # observed over the last tick interval
    degree: int
    max_degree: int
    pool_capacity: Optional[int]
    admission_limit: Optional[int]
    baseline_admission_limit: Optional[int]  # limit at loop start
    n_domains: int
    open_domains: tuple[int, ...]
    quarantined_domains: tuple[int, ...]
    breaker_flaps: tuple[int, ...]     # cumulative failed probes per domain
    crashes_by_domain: tuple[int, ...]  # cumulative crashes per domain
    predict_exec_s: Callable[[int], float] = field(compare=False, default=None)


class Detector(abc.ABC):
    """One failure signature watched across ticks."""

    name = "detector"

    def reset(self) -> None:
        """Clear cross-tick state (called by the loop at run start)."""

    def bind(self, session) -> None:
        """Attach to a telemetry session's bus/registry (optional)."""

    @abc.abstractmethod
    def observe(self, view: LoopView) -> list[Detection]:
        """Detections raised by this tick's snapshot."""


class SLOBurnDetector(Detector):
    """Windowed P99 attainment is burning: sustained SLO violations.

    Fires after ``consecutive`` ticks whose recent violation fraction
    exceeds ``budget`` — a streak requirement so one bad window does not
    trigger global knob turns.
    """

    name = "slo-burn"

    def __init__(self, budget: float = 0.05, consecutive: int = 2) -> None:
        if not 0.0 <= budget < 1.0:
            raise ValueError("budget must be in [0, 1)")
        if consecutive < 1:
            raise ValueError("consecutive must be >= 1")
        self.budget = float(budget)
        self.consecutive = int(consecutive)
        self._streak = 0

    def reset(self) -> None:
        self._streak = 0

    def observe(self, view: LoopView) -> list[Detection]:
        if view.violation_fraction > self.budget:
            self._streak += 1
        else:
            self._streak = 0
        if self._streak < self.consecutive:
            return []
        return [Detection(
            time=view.now,
            kind="slo-burn",
            severity=min(1.0, view.violation_fraction),
            detail=(
                ("violation", round(view.violation_fraction, 9)),
                ("streak", self._streak),
            ),
        )]


class BacklogGrowthDetector(Detector):
    """The dispatch queue is past threshold and still growing."""

    name = "backlog-growth"

    def __init__(self, consecutive: int = 2) -> None:
        if consecutive < 1:
            raise ValueError("consecutive must be >= 1")
        self.consecutive = int(consecutive)
        self._streak = 0
        self._last_depth: Optional[int] = None

    def reset(self) -> None:
        self._streak = 0
        self._last_depth = None

    def observe(self, view: LoopView) -> list[Detection]:
        depth = view.backlog_depth
        growing = (
            depth > view.backlog_threshold
            and (self._last_depth is None or depth >= self._last_depth)
        )
        self._last_depth = depth
        self._streak = self._streak + 1 if growing else 0
        if self._streak < self.consecutive:
            return []
        return [Detection(
            time=view.now,
            kind="backlog-growth",
            severity=min(1.0, depth / max(1, 4 * view.backlog_threshold)),
            detail=(("depth", depth), ("streak", self._streak)),
        )]


class BreakerFlapDetector(Detector):
    """A breaker keeps failing its half-open probes (flapping).

    Watches the per-domain flap counters (exported to the metrics registry
    by ``CircuitBreakerBank.bind_metrics`` since this PR) over a sliding
    window of ticks; a domain whose probes keep failing is broken in a way
    recovery backoff alone will not cure.
    """

    name = "breaker-flap"

    def __init__(self, flap_threshold: int = 2, window_ticks: int = 5) -> None:
        if flap_threshold < 1:
            raise ValueError("flap_threshold must be >= 1")
        if window_ticks < 1:
            raise ValueError("window_ticks must be >= 1")
        self.flap_threshold = int(flap_threshold)
        self.window_ticks = int(window_ticks)
        self._history: deque[tuple[int, ...]] = deque(maxlen=window_ticks + 1)

    def reset(self) -> None:
        self._history.clear()

    def observe(self, view: LoopView) -> list[Detection]:
        self._history.append(view.breaker_flaps)
        if len(self._history) < 2:
            return []
        oldest = self._history[0]
        detections = []
        for domain, (then, now_count) in enumerate(zip(oldest, view.breaker_flaps)):
            delta = now_count - then
            if delta < self.flap_threshold or domain in view.quarantined_domains:
                continue
            detections.append(Detection(
                time=view.now,
                kind="breaker-flap",
                severity=min(1.0, delta / (2.0 * self.flap_threshold)),
                detail=(("domain", domain), ("flaps", delta)),
            ))
        return detections


class DomainPoisonDetector(Detector):
    """One fault domain absorbs a disproportionate share of crashes.

    Subscribes to ``dispatch.crash`` events on the telemetry bus when a
    session is live (the events carry their fault domain); otherwise falls
    back to the port's cumulative per-domain crash counters. Either way the
    decision rule is the same: a domain with ``crash_threshold`` crashes
    inside the sliding window, holding at least ``share`` of the window's
    total, is flagged for quarantine.
    """

    name = "domain-poisoning"

    def __init__(
        self,
        crash_threshold: int = 3,
        window_ticks: int = 5,
        share: float = 0.5,
    ) -> None:
        if crash_threshold < 1:
            raise ValueError("crash_threshold must be >= 1")
        if window_ticks < 1:
            raise ValueError("window_ticks must be >= 1")
        if not 0.0 < share <= 1.0:
            raise ValueError("share must be in (0, 1]")
        self.crash_threshold = int(crash_threshold)
        self.window_ticks = int(window_ticks)
        self.share = float(share)
        self._history: deque[tuple[int, ...]] = deque(maxlen=window_ticks + 1)
        self._bus_counts: Optional[dict[int, int]] = None
        self._unsubscribe = None

    def reset(self) -> None:
        self._history.clear()
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        self._bus_counts = None

    def bind(self, session) -> None:
        if session is None:
            return
        counts: dict[int, int] = {}

        def on_crash(event) -> None:
            domain = dict(event.fields).get("domain", -1)
            if domain is not None and domain >= 0:
                counts[domain] = counts.get(domain, 0) + 1

        self._bus_counts = counts
        self._unsubscribe = session.bus.subscribe(on_crash, kind="dispatch.crash")

    def _cumulative(self, view: LoopView) -> tuple[int, ...]:
        if self._bus_counts is not None:
            return tuple(
                self._bus_counts.get(d, 0) for d in range(view.n_domains)
            )
        return view.crashes_by_domain

    def observe(self, view: LoopView) -> list[Detection]:
        cumulative = self._cumulative(view)
        self._history.append(cumulative)
        oldest = self._history[0]
        deltas = [now - then for then, now in zip(oldest, cumulative)]
        total = sum(deltas)
        if total == 0:
            return []
        detections = []
        for domain, crashes in enumerate(deltas):
            if crashes < self.crash_threshold or crashes < self.share * total:
                continue
            if domain in view.quarantined_domains:
                continue
            detections.append(Detection(
                time=view.now,
                kind="domain-poisoning",
                severity=min(1.0, crashes / total),
                detail=(("domain", domain), ("crashes", crashes)),
            ))
        return detections


class RecoveryDetector(Detector):
    """The storm has passed: sustained health with protection still tight.

    Fires only while the loop is still holding something back — the
    admission limit sits below its run-start baseline, or domains remain
    quarantined — so the loop loosens what it (or its operator) previously
    tightened and recovers the shed throughput.
    """

    name = "recovered"

    def __init__(self, budget: float = 0.02, healthy_ticks: int = 5) -> None:
        if not 0.0 <= budget < 1.0:
            raise ValueError("budget must be in [0, 1)")
        if healthy_ticks < 1:
            raise ValueError("healthy_ticks must be >= 1")
        self.budget = float(budget)
        self.healthy_ticks = int(healthy_ticks)
        self._streak = 0

    def reset(self) -> None:
        self._streak = 0

    def observe(self, view: LoopView) -> list[Detection]:
        healthy = (
            view.violation_fraction <= self.budget
            and view.backlog_depth <= view.backlog_threshold
        )
        self._streak = self._streak + 1 if healthy else 0
        tightened = (
            view.admission_limit is not None
            and view.baseline_admission_limit is not None
            and view.admission_limit < view.baseline_admission_limit
        )
        holding_back = tightened or bool(view.quarantined_domains)
        if self._streak < self.healthy_ticks or not holding_back:
            return []
        return [Detection(
            time=view.now,
            kind="recovered",
            severity=0.1,
            detail=(("streak", self._streak),),
        )]


def default_detectors() -> list[Detector]:
    """The standard sensor suite, one per failure signature."""
    return [
        SLOBurnDetector(),
        BacklogGrowthDetector(),
        BreakerFlapDetector(),
        DomainPoisonDetector(),
        RecoveryDetector(),
    ]
