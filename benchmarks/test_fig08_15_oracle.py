"""Benchmarks for the Oracle-accuracy figures (Figs. 8 and 15)."""

from conftest import run_once

from repro.experiments.figures import fig8, fig15


def test_fig8_propack_matches_oracle_degrees(benchmark, ctx):
    fig = run_once(benchmark, fig8, ctx)
    matches = fig.column("match")
    # The paper: correct in all but 2 of its cells. Allow a couple of
    # off-by-small cells on the reduced grid.
    assert sum(matches) >= 0.85 * len(matches)
    # Oracle degree grows with concurrency (Fig. 8 observation 1).
    for app in {r["app"] for r in fig.rows}:
        rows = sorted(
            fig.select(app=app, merit="total"), key=lambda r: r["concurrency"]
        )
        degrees = [r["oracle_degree"] for r in rows]
        assert degrees[-1] >= degrees[0]


def test_fig15_expense_objective_packs_more(benchmark, ctx):
    fig = run_once(benchmark, fig15, ctx)
    for app in {r["app"] for r in fig.rows}:
        for c in {r["concurrency"] for r in fig.select(app=app)}:
            service = fig.select(app=app, concurrency=c, objective="service")[0]
            expense = fig.select(app=app, concurrency=c, objective="expense")[0]
            # Fig. 15: Oracle degree is higher when minimizing expense.
            assert expense["oracle_degree"] >= service["oracle_degree"]
    assert sum(fig.column("match")) >= 0.8 * len(fig.rows)
