"""Benchmarks for the extension ablations (A3-A5)."""

from conftest import run_once

from repro.experiments.figures import (
    ablation_amortization,
    ablation_provider_mitigation,
    ablation_rightsizing,
    ablation_skew,
)


def test_a3_provider_mitigation_lowers_degree(benchmark, ctx):
    """Paper Sec. 5: better provider control plane → lower P_opt and a
    smaller packing win."""
    fig = run_once(benchmark, ablation_provider_mitigation, ctx)
    rows = sorted(fig.rows, key=lambda r: r["sched_search_factor"], reverse=True)
    degrees = [r["degree"] for r in rows]
    scalings = [r["scaling_at_c_s"] for r in rows]
    # Mitigation monotonically shrinks the baseline scaling time...
    assert scalings == sorted(scalings, reverse=True)
    # ...and the chosen packing degree never increases, strictly dropping
    # from the unmitigated to the best-mitigated platform.
    assert all(a >= b for a, b in zip(degrees, degrees[1:]))
    assert degrees[-1] < degrees[0]


def test_a4_skew_erodes_model_and_win(benchmark, ctx):
    """Skew both breaks the homogeneous fit AND erodes the packing win:
    a packed instance's straggler multiplies on top of the longer packed
    base time, so at extreme skew the homogeneous plan can even lose on
    total service time — the regime where a skew-aware planner is needed."""
    fig = run_once(benchmark, ablation_skew, ctx)
    rows = sorted(fig.rows, key=lambda r: r["skew_cv"])
    chi2 = [r["service_chi2"] for r in rows]
    wins = [r["service_improvement_pct"] for r in rows]
    # The homogeneous model's fit deteriorates monotonically with skew...
    assert chi2 == sorted(chi2)
    assert chi2[0] < 4.075          # accepted without skew
    assert chi2[-1] > chi2[0] * 5   # clearly rejected at cv=0.8
    # ...and the realized improvement erodes monotonically with skew,
    # staying positive through moderate skew (cv <= 0.4).
    assert wins == sorted(wins, reverse=True)
    assert all(w > 0 for r, w in zip(rows, wins) if r["skew_cv"] <= 0.4)


def test_a6_rightsizing_narrows_expense_not_service(benchmark, ctx):
    """Against a realistic right-sized baseline (CPU scales with memory),
    the expense gap collapses toward parity while the service-time win
    grows — the paper's max-memory setup is the right operating point."""
    fig = run_once(benchmark, ablation_rightsizing, ctx)
    for app in {r["app"] for r in fig.rows}:
        paper = fig.select(app=app, baseline="max-memory (paper)")[0]
        sized = fig.select(app=app, baseline="right-sized")[0]
        # Expense win is much smaller against the right-sized baseline...
        assert sized["expense_improvement_pct"] < paper["expense_improvement_pct"] - 30
        # ...but the service-time win grows (right-sized functions run on a
        # fraction of a core, so their execution time balloons).
        assert sized["service_improvement_pct"] > paper["service_improvement_pct"]
        # Packed 10 GB instances stay in the same expense ballpark as the
        # right-sized deployment (GB-seconds are ~CPU-bound-invariant).
        assert sized["expense_improvement_pct"] > -100.0


def test_a5_overhead_amortizes(benchmark, ctx):
    fig = run_once(benchmark, ablation_amortization, ctx)
    rows = sorted(fig.rows, key=lambda r: r["runs"])
    improvements = [r["cumulative_expense_improvement_pct"] for r in rows]
    shares = [r["overhead_share_pct"] for r in rows]
    assert improvements == sorted(improvements)  # improves with every run
    assert shares == sorted(shares, reverse=True)  # overhead share shrinks
    assert shares[-1] < shares[0] / 3
