"""Benchmark for the long-horizon serving subsystem (SV1)."""

from conftest import record_serving_benchmark, run_once

from repro.experiments.figures import serving_day


def test_sv1_hybrid_beats_no_keepalive(benchmark, ctx):
    fig = run_once(benchmark, serving_day, ctx)
    record_serving_benchmark(benchmark, "serving_day", fig)
    by = {(r["keepalive"], r["mode"]): r for r in fig.rows}
    none_static = by[("no-keep-alive", "static")]
    hybrid_static = by[("hybrid-histogram", "static")]
    # The acceptance claim: the hybrid histogram slashes cold starts at
    # equal-or-lower total cost than never keeping instances warm.
    assert hybrid_static["cold_start_pct"] < 0.5 * none_static["cold_start_pct"]
    assert (
        hybrid_static["usd_per_1k_requests"]
        <= none_static["usd_per_1k_requests"]
    )
    # No keep-alive means every dispatch is cold and nothing sits idle.
    assert none_static["cold_start_pct"] == 100.0
    assert none_static["idle_gb_s"] == 0.0
    # Warm pools shorten sojourns (no repeated cold-start latency).
    assert hybrid_static["p99_s"] < none_static["p99_s"]
    # The replanner actually replans over the day.
    assert any(r["policy_changes"] > 0 for r in fig.rows if r["mode"] == "replan")
    # Same request count everywhere: the arrival schedule is shared.
    assert len({r["requests"] for r in fig.rows}) == 1
