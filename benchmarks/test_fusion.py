"""Benchmarks for platform-side fusion (FU1) and the planner's throughput.

Exports ``BENCH_fusion.json``: the fused-vs-unfused cost per 1k functions
under 100 ms-rounded billing (the PR's headline dollars) and the fusion
planner's plans/second on the serving-scale trio mix.
"""

from conftest import BENCH_FUSION, _mean_round_s, run_once

from repro.experiments.figures import fusion_comparison


def test_fu1_platform_fusion_beats_user_side_propack(benchmark, ctx):
    fig = run_once(benchmark, fusion_comparison, ctx)
    wall = _mean_round_s(benchmark)
    if wall > 0.0:
        BENCH_FUSION["fu1_wall_s"] = round(wall, 3)

    for scale in ("burst", "serving"):
        rounded = {
            row["mode"]: row
            for row in fig.select(scale=scale, billing="rounded-100ms")
        }
        propack, both = rounded["propack"], rounded["both"]
        # The acceptance claim: platform-side fusion on top of ProPack is
        # strictly cheaper per function than user-side ProPack alone, on
        # fewer instances, with nothing dropped and nothing violated.
        assert both["usd_per_1k_functions"] < propack["usd_per_1k_functions"]
        assert both["instances"] < propack["instances"]
        assert both["functions"] == propack["functions"]
        assert all(row["violations"] == 0 for row in rounded.values())
        BENCH_FUSION[f"{scale}_unfused_usd_per_1k"] = round(
            propack["usd_per_1k_functions"], 4
        )
        BENCH_FUSION[f"{scale}_fused_usd_per_1k"] = round(
            both["usd_per_1k_functions"], 4
        )


def test_fu1_same_seed_reproduces(ctx):
    a = fusion_comparison(ctx)
    b = fusion_comparison(ctx)
    assert a.rows == b.rows


def test_perf_fusion_planner_throughput(benchmark, ctx):
    """Plans/second of the greedy merge search on the serving-scale trio
    mix — the planner must stay interactive (it runs per deployment, not
    per request), so its throughput is tracked like the dispatch
    primitives."""
    from repro.fusion import FusedFleet, mix_demands
    from repro.platform.providers import PROVIDERS
    from repro.workloads import ALL_APPS

    cfg = ctx.config
    profile = PROVIDERS["aws-lambda"].with_overrides(
        billing_granularity_s=cfg.fusion_granularity_s,
        min_billed_duration_s=cfg.fusion_min_billed_s,
    )

    def plan_once():
        fleet = FusedFleet(profile, seed=cfg.fusion_seed)
        for tenant, app, count in mix_demands(
            cfg.fusion_mix, cfg.fusion_serving_scale
        ):
            fleet.submit(tenant, ALL_APPS[app], count)
        return fleet.plan("both")

    decision = benchmark.pedantic(plan_once, rounds=5, iterations=1)
    assert decision.merges > 0
    mean = _mean_round_s(benchmark)
    if mean > 0.0:
        BENCH_FUSION["planner_plans_per_s"] = round(1.0 / mean, 1)
