"""Benchmark for the shared-fleet provider-side benefit (M2)."""

from conftest import run_once

from repro.experiments.figures import multitenant_benefit


def test_m2_neighbor_packing_benefit(benchmark, ctx):
    """Paper Sec. 5: packing improves fleet utilization — the small
    tenant's scaling time falls monotonically as the big tenant packs."""
    fig = run_once(benchmark, multitenant_benefit, ctx)
    rows = sorted(fig.rows, key=lambda r: r["big_tenant_degree"])
    small_scaling = [r["small_scaling_s"] for r in rows]
    big_scaling = [r["big_scaling_s"] for r in rows]
    # Both tenants benefit as the big tenant packs deeper.
    assert small_scaling == sorted(small_scaling, reverse=True)
    assert big_scaling == sorted(big_scaling, reverse=True)
    # The neighbor's win is dramatic (>2x from degree 1 to 8).
    assert small_scaling[-1] < 0.5 * small_scaling[0]
