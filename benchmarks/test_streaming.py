"""Benchmark for the streaming-packing extension (S1)."""

from conftest import run_once

from repro.experiments.figures import streaming_policies


def test_s1_streaming_policies_meet_qos_and_save(benchmark, ctx):
    fig = run_once(benchmark, streaming_policies, ctx)
    rows = sorted(fig.rows, key=lambda r: r["rate_per_s"])
    # Every planned policy meets the p95 sojourn bound in simulation.
    assert all(r["meets_qos"] for r in rows)
    # Packing saves a lot per request, and savings grow with traffic.
    savings = [r["savings_vs_solo_pct"] for r in rows]
    assert min(savings) > 50.0
    assert savings[-1] > savings[0]
    # Deeper packing fits under the same bound at higher rates.
    degrees = [r["degree"] for r in rows]
    assert degrees[-1] >= degrees[0]
