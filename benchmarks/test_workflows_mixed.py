"""Benchmarks for the workflow and mixed-packing extensions."""

from conftest import run_once

from repro.core.propack import ProPack
from repro.extensions.mixed import MixedPacker
from repro.platform.providers import AWS_LAMBDA
from repro.workflows import Stage, WorkflowGraph, WorkflowRunner
from repro.workloads import SMITH_WATERMAN, SORT, STATELESS_COST, VIDEO


def _run_workflow_pair(ctx):
    platform = ctx.platform()
    pipeline = WorkflowGraph([
        Stage("split", STATELESS_COST, 1000),
        Stage("encode", VIDEO, 3000, depends_on=("split",)),
        Stage("index", STATELESS_COST, 2000, depends_on=("split",)),
        Stage("merge", SORT, 1000, depends_on=("encode", "index")),
    ])
    unpacked = WorkflowRunner(platform).run(pipeline)
    packed = WorkflowRunner(platform, propack=ctx.propack()).run(pipeline)
    return unpacked, packed


def test_workflow_packing_cuts_makespan_and_expense(benchmark, ctx):
    unpacked, packed = run_once(benchmark, _run_workflow_pair, ctx)
    assert packed.makespan_s < unpacked.makespan_s
    assert packed.expense_usd < 0.5 * unpacked.expense_usd
    # The realized critical path passes through the heavy encode stage.
    assert "encode" in packed.critical_path()


def _mixed_vs_segregated(ctx):
    packer = MixedPacker(AWS_LAMBDA)
    demand = {SMITH_WATERMAN: 200, STATELESS_COST: 400, SORT: 100}
    mixed = packer.pack_mixed(demand)
    # Segregation at each app's stand-alone joint degree for this scale.
    pp = ctx.propack()
    degrees = {
        app: pp.plan(app, count * 5, objective="joint")[0].degree
        for app, count in demand.items()
    }
    segregated = packer.pack_segregated(demand, degrees)
    return mixed, segregated, packer


def test_mixed_packing_reduces_instances_feasibly(benchmark, ctx):
    mixed, segregated, packer = run_once(benchmark, _mixed_vs_segregated, ctx)
    assert mixed.functions_packed() == segregated.functions_packed()
    # Mixing low-pressure riders with heavy functions needs no more
    # instances than segregation, and every group stays feasible.
    assert mixed.n_instances <= segregated.n_instances
    for group in mixed.groups:
        assert group.memory_mb <= AWS_LAMBDA.max_memory_mb
        assert (
            packer.model.instance_execution_seconds(group)
            <= AWS_LAMBDA.max_execution_seconds
        )
