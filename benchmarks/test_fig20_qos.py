"""Benchmark for the Xapian QoS figure (Fig. 20)."""

from conftest import run_once

from repro.experiments.figures import fig20


def test_fig20_qos_aware_packing(benchmark, ctx):
    fig = run_once(benchmark, fig20, ctx)
    service = fig.select(variant="service-only")[0]
    qos = fig.select(variant="qos-joint")[0]
    expense = fig.select(variant="expense-only")[0]
    # Fig. 20a: degree ordering service <= qos-joint <= expense.
    assert service["degree"] <= qos["degree"] <= expense["degree"]
    # The QoS plan meets the bound in the realized tail.
    assert qos["meets_qos"]
    # Fig. 20b ordering: the QoS plan trades a little tail for expense.
    assert qos["expense_usd"] <= service["expense_usd"]
    assert qos["tail_service_s"] <= expense["tail_service_s"]
    # Both improvements remain large (paper: >80% tail, >65% expense).
    assert qos["tail_improvement_pct"] > 65.0
    assert qos["expense_improvement_pct"] > 50.0
