"""Benchmarks for the objective-variant figures (Figs. 13, 14, 16)."""

import numpy as np
from conftest import run_once

from repro.experiments.figures import fig13, fig14, fig16


def test_fig13_service_only_beats_joint_on_service(benchmark, ctx):
    fig = run_once(benchmark, fig13, ctx)
    deltas = fig.column("delta_pct")
    # Single-objective never loses on its own axis, wins a few % on average
    # (paper: 7.5%).
    assert min(deltas) >= -1e-6
    assert 0.5 < float(np.mean(deltas)) < 30.0


def test_fig14_expense_only_beats_joint_on_expense(benchmark, ctx):
    fig = run_once(benchmark, fig14, ctx)
    deltas = fig.column("delta_pct")
    assert min(deltas) >= -1e-6
    assert 0.1 < float(np.mean(deltas)) < 30.0  # paper: 9.3%


def test_fig16_weights_trade_the_two_objectives(benchmark, ctx):
    fig = run_once(benchmark, fig16, ctx)
    rows = sorted(fig.rows, key=lambda r: r["w_s"])
    service = [r["service_improvement_pct"] for r in rows]
    expense = [r["expense_improvement_pct"] for r in rows]
    degrees = [r["degree"] for r in rows]
    # More service weight → lower packing degree, better service, worse
    # expense (monotone trend ends; paper notes one experimental dip).
    assert degrees == sorted(degrees, reverse=True)
    assert service[-1] > service[0]
    assert expense[0] > expense[-1]
    # Every configuration still improves both metrics over no packing.
    assert min(service) > 0 and min(expense) > 0
