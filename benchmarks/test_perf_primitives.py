"""Performance microbenchmarks of the simulation substrate itself.

Unlike the figure benchmarks (one timed round, shape assertions), these
measure the primitives' throughput across many rounds — the numbers that
determine how large an experiment the harness can afford. Regressions here
make every figure slower.
"""

import pytest
from conftest import record_throughput, record_wall, run_once

from repro.platform.base import ServerlessPlatform
from repro.platform.invoker import BurstSpec
from repro.platform.providers import AWS_LAMBDA
from repro.sim.engine import Simulator
from repro.sim.resources import FifoResource, ProcessorSharingResource
from repro.workloads import SORT


def test_perf_engine_event_throughput(benchmark):
    """Raw event-loop rate: schedule + execute 10k no-op events."""

    def run():
        sim = Simulator()
        for i in range(10_000):
            sim.schedule(float(i % 100), lambda: None)
        sim.run()
        return sim.events_processed

    assert benchmark(run) == 10_000
    record_throughput(benchmark, "events_per_s", 10_000)


def test_perf_processor_sharing_queue(benchmark):
    """Virtual-time PS queue with 2k concurrent jobs (O(log n) per event)."""

    def run():
        sim = Simulator()
        ps = ProcessorSharingResource(sim, capacity=100.0)
        done = []
        for i in range(2_000):
            ps.submit(1.0 + (i % 5) * 0.1, lambda: done.append(1))
        sim.run()
        return len(done)

    assert benchmark(run) == 2_000


def test_perf_fifo_queue(benchmark):
    def run():
        sim = Simulator()
        fifo = FifoResource(sim, servers=32)
        done = []
        for _ in range(5_000):
            fifo.submit(0.5, lambda: done.append(1))
        sim.run()
        return len(done)

    assert benchmark(run) == 5_000


#: Scenario exercising every kernel path — throttle verdicts, crash
#: draws, retry delays, straggler factors — shared by both chain-walk
#: benchmarks below.
def _bench_scenario():
    from repro.faults.scenario import FaultScenario

    return FaultScenario(
        name="bench",
        crash_rate=0.2,
        throttle_capacity=64,
        throttle_refill_per_s=500.0,
        straggler_rate=0.05,
    )


class _CountingEnv:
    """Minimal consumer: monotone throttle clock + outcome counters.

    Serves both walkers: ``attempt_seconds`` is the chain-major hook
    (env draws the noise), while ``exec_noise_sigma``/``work_seconds``
    and the ``*_wave`` hooks are the wave-major protocol (the walker
    draws per-wave arrays).
    """

    exec_noise_sigma = 0.25

    def __init__(self, kernel):
        self.kernel = kernel
        self.clock = 0.0
        self.succeeded = 0
        self.lost = 0

    def throttle_clock(self, launch_at):
        self.clock = max(self.clock, launch_at)
        return self.clock

    def on_throttled(self, chain):
        pass

    def on_rejected(self, chain):
        self.lost += 1

    def is_warm(self, launch_at):
        return False

    def attempt_seconds(self, chain, warm):
        factor = self.kernel.exec_noise_factor(0.25)
        factor *= self.kernel.straggler_factor()
        return chain.n_packed * 0.1 * factor

    def work_seconds(self, chain, warm):
        return chain.n_packed * 0.1

    def is_warm_wave(self, times):
        return [False] * len(times)

    def work_seconds_wave(self, chains, warm):
        return [c.n_packed * 0.1 for c in chains]

    def on_success(self, chain, launch_at, warm, exec_seconds):
        self.succeeded += 1

    def on_success_wave(self, chains, times, warm, exec_s):
        self.succeeded += len(chains)

    def on_crash(self, chain, launch_at, warm, exec_seconds, crash):
        return launch_at + crash.at_fraction * exec_seconds

    def on_retry(self, chain, delay):
        pass

    def on_exhausted(self, chain):
        self.lost += 1


def test_perf_dispatch_kernel_chain_throughput_scalar(benchmark):
    """Attempt-chain arbitration rate of the chain-major (scalar) walk.

    Walks 2k chains one at a time through ``run_synchronous_chain``.
    This is the per-dispatch cost consumers that genuinely dispatch one
    chain at a time (serving, streaming) pay; batch consumers use the
    wave walker benchmarked below.
    """
    from repro.engine import DispatchKernel
    from repro.faults.retry import ImmediateRetry
    from repro.sim.randomness import RandomStreams

    scenario = _bench_scenario()

    def run():
        rng = RandomStreams(17).spawn("kernel-bench")
        kernel = DispatchKernel(
            rng, scenario=scenario, retry_policy=ImmediateRetry(3)
        )
        env = _CountingEnv(kernel)
        for i in range(2_000):
            chain = kernel.new_chain(n_packed=4, retry=kernel.fresh_retry())
            kernel.run_synchronous_chain(chain, env, launch_at=float(i) * 0.01)
        return env.succeeded + env.lost

    assert benchmark(run) == 2_000
    record_throughput(benchmark, "chains_per_s_scalar", 2_000)


def test_perf_dispatch_kernel_chain_throughput(benchmark):
    """Attempt-chain arbitration rate of the wave-major (batched) walk.

    Same 2k chains and fault scenario as the scalar benchmark, walked in
    waves: one array draw per decision kind per wave instead of scalar
    draws per attempt (see ``repro.engine.wave``). This is the headline
    ``chains_per_s`` the CI perf gate tracks — the refactor's acceptance
    bar is >=5x the PR-9 scalar baseline of ~93k chains/s.
    """
    from repro.engine import DispatchKernel
    from repro.engine.wave import dispatch_wave_jobs, run_chain_waves
    from repro.faults.retry import ImmediateRetry
    from repro.sim.randomness import RandomStreams

    scenario = _bench_scenario()

    def run():
        rng = RandomStreams(17).spawn("kernel-bench")
        kernel = DispatchKernel(
            rng, scenario=scenario, retry_policy=ImmediateRetry(3),
            mode="batched",
        )
        env = _CountingEnv(kernel)
        jobs = dispatch_wave_jobs(kernel, 2_000, n_packed=4, spacing_s=0.01)
        run_chain_waves(kernel, env, jobs)
        return env.succeeded + env.lost

    assert benchmark(run) == 2_000
    record_throughput(benchmark, "chains_per_s", 2_000)


def test_perf_compaction_crossover(benchmark):
    """Agenda compaction on a cancel-heavy 100k-event heap.

    90% of scheduled events are cancelled before the run (the shape
    hedging/twin-cancellation produces at million scale). The garbage-
    ratio trigger (rebuild once dead > live) with the 1024-event floor
    was chosen from this workload's measurements: floor 64 wins ~10%
    below ~8k events, 1024 wins ~6% at 1e5-1e6, compaction off is ~60%
    slower at 1e6 (see the ``Simulator.COMPACT_MIN_EVENTS`` docs).
    """

    def run():
        sim = Simulator()
        events = [
            sim.schedule(float(i % 997) + 1.0, lambda: None)
            for i in range(100_000)
        ]
        for i, event in enumerate(events):
            if i % 10:
                event.cancel()
        sim.run()
        return sim.events_processed, sim.compactions

    processed, compactions = benchmark(run)
    assert processed == 10_000
    assert compactions >= 1  # the trigger actually fired at this scale
    record_throughput(benchmark, "cancel_heavy_events_per_s", 100_000)


# --------------------------------------------------------------------- #
# Dispatch scale points: wall time of one full burst at C=1e4/1e5/1e6.
# The C>=1e5 points run on the fluid fast path (no faults/hedging/
# telemetry -> closed-form completion replay, byte-identical to the
# event-driven kernel); the CI perf gate tracks all three wall times.
# --------------------------------------------------------------------- #

def _scale_burst(concurrency, wave_size=None):
    platform = ServerlessPlatform(AWS_LAMBDA, seed=300)
    result = platform.run_burst(
        BurstSpec(app=SORT, concurrency=concurrency, wave_size=wave_size)
    )
    assert result.n_instances == concurrency
    return result


def test_perf_burst_scale_c1e4(benchmark):
    run_once(benchmark, _scale_burst, 10_000)
    record_wall(benchmark, "burst_c1e4_wall_s")


def test_perf_burst_scale_c1e5(benchmark):
    """The refactor's absolute budget: C=1e5 end-to-end within 5 s."""
    run_once(benchmark, _scale_burst, 100_000)
    wall = record_wall(benchmark, "burst_c1e5_wall_s")
    assert 0.0 < wall <= 5.0, f"C=1e5 burst took {wall:.2f}s (budget 5s)"
    record_throughput(benchmark, "fluid_chains_per_s", 100_000)


def test_perf_burst_scale_c1e6(benchmark):
    """Million-scale: wave_size caps live instances, exercising the
    warm-reuse ring inside the fluid replay."""
    run_once(benchmark, _scale_burst, 1_000_000, 60_000)
    record_wall(benchmark, "burst_c1e6_wall_s")


def test_perf_full_burst_c1000(benchmark):
    """End-to-end burst simulation rate at C=1000 (the harness workhorse)."""
    platform = ServerlessPlatform(AWS_LAMBDA, seed=221)

    def run():
        return platform.run_burst(
            BurstSpec(app=SORT, concurrency=1000)
        ).n_instances

    assert benchmark(run) == 1000


def test_perf_full_burst_c5000_packed(benchmark):
    platform = ServerlessPlatform(AWS_LAMBDA, seed=222)

    def run():
        return platform.run_burst(
            BurstSpec(app=SORT, concurrency=5000, packing_degree=8)
        ).n_instances

    assert benchmark(run) == 625


@pytest.mark.telemetry_overhead
def test_perf_telemetry_disabled_is_free():
    """The zero-cost-when-disabled contract: a disabled TelemetryConfig
    must keep the C=1000 burst within 2% of the uninstrumented path.

    Timing-sensitive by nature, so it carries the ``telemetry_overhead``
    marker and runs in the benchmarks CI job, not the tier-1 suite.
    """
    import time

    from repro.telemetry import TelemetryConfig

    def one_burst(telemetry):
        platform = ServerlessPlatform(AWS_LAMBDA, seed=224, telemetry=telemetry)
        return platform.run_burst(
            BurstSpec(app=SORT, concurrency=1000)
        ).n_instances

    # Warm both paths (imports, numpy generator setup) before timing.
    assert one_burst(None) == one_burst(TelemetryConfig.off()) == 1000

    def best_of(rounds, telemetry):
        best = float("inf")
        for _ in range(rounds):
            t0 = time.perf_counter()
            one_burst(telemetry)
            best = min(best, time.perf_counter() - t0)
        return best

    baseline = best_of(5, None)
    disabled = best_of(5, TelemetryConfig.off())
    # 2% contract plus a small absolute epsilon against scheduler jitter.
    assert disabled <= baseline * 1.02 + 0.005, (
        f"disabled telemetry cost {disabled:.4f}s vs baseline {baseline:.4f}s"
    )


def test_perf_optimizer_degree_search(benchmark):
    """Model-driven degree optimization must stay trivially cheap — that is
    ProPack's whole selling point vs the Oracle's brute force."""
    from repro.core.propack import ProPack

    platform = ServerlessPlatform(AWS_LAMBDA, seed=223)
    propack = ProPack(platform)
    propack.interference_profile(SORT)
    propack.scaling_profile()

    def run():
        optimizer = propack.optimizer(SORT, 5000)
        return optimizer.optimal_joint()

    assert benchmark(run) >= 1
