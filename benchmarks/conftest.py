"""Shared fixtures for the figure benchmarks.

Each benchmark regenerates one paper artifact on a reduced grid
(:meth:`ExperimentConfig.quick`) and asserts the *shape* the paper reports —
who wins, roughly by how much, where trends point. Absolute numbers are the
simulator's, not the authors' testbed's.

The context is session-scoped so the profiling runs (interference + scaling
model fits) are paid once and amortized across figures, exactly as the
paper amortizes them across applications.
"""

import json
import pathlib

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentContext

#: Dispatch-substrate throughput numbers, populated by the primitive
#: benchmarks in ``test_perf_primitives.py`` and written to
#: ``BENCH_dispatch.json`` at the repo root when the session ends — the
#: one-glance answer to "did this PR slow the simulator down?".
BENCH_RESULTS: dict[str, float] = {}

#: Serving-day throughput numbers (requests/s of simulated traffic and
#: wall time for the SV1/SH1 sweeps), populated by ``test_serving.py`` /
#: ``test_selfhealing.py`` and written to ``BENCH_serving.json`` — the
#: macro counterpart of the dispatch-primitive trajectory.
BENCH_SERVING: dict[str, float] = {}

#: Platform-side fusion numbers (fused vs unfused cost per 1k functions
#: under rounded billing, plus planner throughput), populated by
#: ``test_fusion.py`` and written to ``BENCH_fusion.json``.
BENCH_FUSION: dict[str, float] = {}


@pytest.fixture(scope="session")
def ctx():
    return ExperimentContext(config=ExperimentConfig.quick())


def run_once(benchmark, func, *args):
    """Run a figure exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, rounds=1, iterations=1)


def _mean_round_s(benchmark) -> float:
    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    return stats.mean if stats is not None and stats.mean > 0.0 else 0.0


def record_throughput(benchmark, key: str, per_round: int) -> None:
    """Convert one benchmark's mean round time into a rate for the export."""
    mean = _mean_round_s(benchmark)
    if mean > 0.0:
        BENCH_RESULTS[key] = per_round / mean


def record_wall(benchmark, key: str) -> float:
    """Record one benchmark's mean round wall time (seconds) for the export.

    Used by the dispatch scale points (``burst_c1e4_wall_s`` …): the CI
    perf gate reads these alongside the throughput keys. Returns the mean
    so callers can assert absolute budgets (e.g. C=1e5 within 5 s).
    """
    mean = _mean_round_s(benchmark)
    if mean > 0.0:
        BENCH_RESULTS[key] = mean
    return mean


def record_serving_benchmark(benchmark, key: str, fig) -> None:
    """Record a serving sweep's wall time and simulated-requests rate.

    ``fig`` is the sweep's FigureResult; its rows each carry a
    ``requests`` count (one simulated serving run per row).
    """
    mean = _mean_round_s(benchmark)
    requests = sum(r.get("requests", 0) for r in fig.rows)
    if mean > 0.0 and requests > 0:
        BENCH_SERVING[f"{key}_wall_s"] = round(mean, 3)
        BENCH_SERVING[f"{key}_requests_per_s"] = round(requests / mean, 1)


def _record_bench_manifests(root: pathlib.Path) -> None:
    """Mirror the ``BENCH_*.json`` emissions through harness manifests
    (``results/bench/<run_id>/``), so the perf trajectory carries the same
    provenance (package version, git SHA) as campaign runs."""
    from repro.harness import ArtifactStore

    store = ArtifactStore(root / "results")
    for export, payload in (
        ("dispatch", BENCH_RESULTS),
        ("serving", BENCH_SERVING),
        ("fusion", BENCH_FUSION),
    ):
        if payload:
            store.record(
                campaign="bench",
                target=f"bench-{export}",
                params={"export": export, "file": f"BENCH_{export}.json"},
                summary=dict(sorted(payload.items())),
                seed=ExperimentConfig.quick().seed,
                stage="bench",
            )


def pytest_sessionfinish(session, exitstatus):
    root = pathlib.Path(__file__).resolve().parent.parent
    if BENCH_RESULTS:
        (root / "BENCH_dispatch.json").write_text(
            json.dumps(
                {
                    # Wall-time keys are seconds (need sub-second precision);
                    # everything else is a rate.
                    k: round(v, 4 if k.endswith("_wall_s") else 1)
                    for k, v in sorted(BENCH_RESULTS.items())
                },
                indent=2,
            ) + "\n"
        )
    if BENCH_SERVING:
        (root / "BENCH_serving.json").write_text(
            json.dumps(dict(sorted(BENCH_SERVING.items())), indent=2) + "\n"
        )
    if BENCH_FUSION:
        (root / "BENCH_fusion.json").write_text(
            json.dumps(dict(sorted(BENCH_FUSION.items())), indent=2) + "\n"
        )
    if BENCH_RESULTS or BENCH_SERVING or BENCH_FUSION:
        _record_bench_manifests(root)
