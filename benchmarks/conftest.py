"""Shared fixtures for the figure benchmarks.

Each benchmark regenerates one paper artifact on a reduced grid
(:meth:`ExperimentConfig.quick`) and asserts the *shape* the paper reports —
who wins, roughly by how much, where trends point. Absolute numbers are the
simulator's, not the authors' testbed's.

The context is session-scoped so the profiling runs (interference + scaling
model fits) are paid once and amortized across figures, exactly as the
paper amortizes them across applications.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentContext


@pytest.fixture(scope="session")
def ctx():
    return ExperimentContext(config=ExperimentConfig.quick())


def run_once(benchmark, func, *args):
    """Run a figure exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, rounds=1, iterations=1)
