"""Shared fixtures for the figure benchmarks.

Each benchmark regenerates one paper artifact on a reduced grid
(:meth:`ExperimentConfig.quick`) and asserts the *shape* the paper reports —
who wins, roughly by how much, where trends point. Absolute numbers are the
simulator's, not the authors' testbed's.

The context is session-scoped so the profiling runs (interference + scaling
model fits) are paid once and amortized across figures, exactly as the
paper amortizes them across applications.
"""

import json
import pathlib

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentContext

#: Dispatch-substrate throughput numbers, populated by the primitive
#: benchmarks in ``test_perf_primitives.py`` and written to
#: ``BENCH_dispatch.json`` at the repo root when the session ends — the
#: one-glance answer to "did this PR slow the simulator down?".
BENCH_RESULTS: dict[str, float] = {}


@pytest.fixture(scope="session")
def ctx():
    return ExperimentContext(config=ExperimentConfig.quick())


def run_once(benchmark, func, *args):
    """Run a figure exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, rounds=1, iterations=1)


def record_throughput(benchmark, key: str, per_round: int) -> None:
    """Convert one benchmark's mean round time into a rate for the export."""
    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    if stats is not None and stats.mean > 0.0:
        BENCH_RESULTS[key] = per_round / stats.mean


def pytest_sessionfinish(session, exitstatus):
    if not BENCH_RESULTS:
        return
    root = pathlib.Path(__file__).resolve().parent.parent
    (root / "BENCH_dispatch.json").write_text(
        json.dumps(
            {k: round(v, 1) for k, v in sorted(BENCH_RESULTS.items())},
            indent=2,
        ) + "\n"
    )
