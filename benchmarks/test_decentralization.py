"""Benchmark for the decentralization × packing matrix (D1)."""

from conftest import run_once

from repro.experiments.figures import decentralization_matrix


def test_d1_packing_complements_decentralization(benchmark, ctx):
    fig = run_once(benchmark, decentralization_matrix, ctx)

    def cell(shards, packing):
        return fig.select(shards=shards, packing=packing)[0]

    central_base = cell(1, "none")
    central_packed = cell(1, "propack")
    sharded_base = cell(4, "none")
    sharded_packed = cell(4, "propack")
    excessive_base = cell(64, "none")

    # Decentralization alone collapses scaling time...
    assert sharded_base["scaling_s"] < 0.2 * central_base["scaling_s"]
    # ...but over-sharding re-bottlenecks on synchronization (Sec. 5).
    assert excessive_base["scaling_s"] > 1.5 * sharded_base["scaling_s"]
    # Decentralization cannot touch expense; packing cuts it everywhere.
    assert sharded_base["expense_usd"] == central_base["expense_usd"]
    assert sharded_packed["expense_usd"] < 0.5 * sharded_base["expense_usd"]
    # The combination is the best service-time cell in the matrix.
    best_service = min(r["service_s"] for r in fig.rows)
    assert sharded_packed["service_s"] == best_service
