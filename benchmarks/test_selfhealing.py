"""Benchmark for the self-healing serving sweep (SH1)."""

from conftest import record_serving_benchmark, run_once

from repro.experiments.figures import selfhealing_storms


def test_sh1_selfhealing_beats_unprotected_near_handtuned(benchmark, ctx):
    fig = run_once(benchmark, selfhealing_storms, ctx)
    record_serving_benchmark(benchmark, "selfhealing_storms", fig)
    scenarios = sorted({r["scenario"] for r in fig.rows})
    assert len(scenarios) == 2  # the claim must hold under >= 2 storms
    for scenario in scenarios:
        by = {
            r["mode"]: r for r in fig.rows if r["scenario"] == scenario
        }
        unprot, tuned, healed = (
            by["unprotected"], by["hand-tuned"], by["self-healing"]
        )
        # The acceptance claim: the loop beats unprotected on windowed
        # P99 attainment, lands within ~10% of the hand-tuned static
        # config, and pays equal-or-lower cost per completed request.
        assert healed["attainment_pct"] > unprot["attainment_pct"]
        assert healed["attainment_pct"] >= 0.9 * tuned["attainment_pct"]
        assert (
            healed["usd_per_1k_completed"] <= unprot["usd_per_1k_completed"]
        )
        # The loop is doing real work: the pipeline fired end to end.
        assert healed["detections"] > 0
        assert healed["applied"] > 0
        # Static modes never remediate.
        assert unprot["applied"] == 0 and tuned["applied"] == 0
        # The arrival schedule is shared across modes.
        assert unprot["requests"] == tuned["requests"] == healed["requests"]


def test_sh1_same_seed_reproduces(ctx):
    a = selfhealing_storms(ctx)
    b = selfhealing_storms(ctx)
    # Same seed ⇒ identical timelines, shed counts, and expense in every
    # row — remediation decisions are stream-deterministic too.
    assert a.rows == b.rows
