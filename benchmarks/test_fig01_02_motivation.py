"""Benchmarks for the motivation figures (Figs. 1-2)."""

from conftest import run_once

from repro.experiments.figures import fig1, fig2


def test_fig1_scaling_share_grows_and_dominates(benchmark, ctx):
    fig = run_once(benchmark, fig1, ctx)
    high_c = ctx.config.high_concurrency
    low_c = min(ctx.config.concurrencies)
    for platform in {r["platform"] for r in fig.rows}:
        for app in {r["app"] for r in fig.rows}:
            series = {
                r["concurrency"]: r["share_pct"]
                for r in fig.select(platform=platform, app=app)
            }
            # Share grows with concurrency on every platform and app...
            assert series[high_c] > series[low_c]
    # ...and exceeds 80% at the highest concurrency on AWS (paper Fig. 1).
    aws_high = [
        r["share_pct"]
        for r in fig.select(platform="aws-lambda", concurrency=high_c)
    ]
    assert min(aws_high) > 80.0


def test_fig2_all_components_grow_with_concurrency(benchmark, ctx):
    fig = run_once(benchmark, fig2, ctx)
    for component in ("scheduling_pct", "startup_pct", "shipping_pct"):
        series = fig.column(component)
        assert series == sorted(series), component
        assert series[-1] == 100.0  # normalized to the max-C value
