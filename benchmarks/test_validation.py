"""Benchmark for the Sec. 2.4 χ² model validation."""

from conftest import run_once

from repro.experiments.figures import validation_chi2


def test_chi_square_accepts_all_models(benchmark, ctx):
    fig = run_once(benchmark, validation_chi2, ctx)
    assert all(fig.column("accepted"))
    # Same ordering as the paper: the expense model fits far tighter than
    # the service model (0.055 vs 3.81 in the paper).
    assert max(fig.column("expense_chi2")) < max(fig.column("service_chi2"))
    assert max(fig.column("service_chi2")) < 4.075
