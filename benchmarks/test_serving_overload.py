"""Benchmark for the overload-resilience sweep (OV1)."""

from conftest import record_serving_benchmark, run_once

from repro.experiments.figures import overload_flashcrowd


def test_ov1_protection_beats_unprotected(benchmark, ctx):
    fig = run_once(benchmark, overload_flashcrowd, ctx)
    record_serving_benchmark(benchmark, "overload_flashcrowd", fig)
    by = {r["protection"]: r for r in fig.rows}
    unprot = by["unprotected"]
    full = by["full"]
    # The acceptance claim: protected serving achieves strictly higher
    # windowed P99 SLO attainment than unprotected at equal-or-lower
    # expense per completed request.
    assert full["attainment_pct"] > unprot["attainment_pct"]
    assert full["usd_per_1k_completed"] <= unprot["usd_per_1k_completed"]
    # Protection is doing real work, not winning by accident: requests
    # are shed, breakers trip or brownout escalates, and the wasted
    # (billed-but-crashed) compute shrinks.
    assert full["shed"] > 0
    assert full["breaker_transitions"] > 0 or full["brownout_level"] > 0
    assert full["wasted_gb_s"] < unprot["wasted_gb_s"]
    # Unprotected serving admits everything.
    assert unprot["shed"] == 0
    # The arrival schedule is shared across protection modes.
    assert len({r["requests"] for r in fig.rows}) == 1


def test_ov1_same_seed_reproduces(ctx):
    a = overload_flashcrowd(ctx)
    b = overload_flashcrowd(ctx)
    # Same seed ⇒ identical shed counts, breaker transitions, and expense
    # in every row — the whole fault schedule is stream-deterministic.
    assert a.rows == b.rows
