"""Benchmarks for the packing-tradeoff figures (Figs. 6-7)."""

import numpy as np
from conftest import run_once

from repro.experiments.figures import fig6, fig7


def test_fig6_scaling_time_falls_with_packing(benchmark, ctx):
    fig = run_once(benchmark, fig6, ctx)
    for app in {r["app"] for r in fig.rows}:
        rows = sorted(fig.select(app=app), key=lambda r: r["degree"])
        scaling = [r["scaling_s"] for r in rows]
        # Strictly decreasing in the packing degree at fixed concurrency.
        assert all(a > b for a, b in zip(scaling, scaling[1:]))
        # And the drop from degree 1 to max is large (>80%).
        assert scaling[-1] < 0.2 * scaling[0]


def test_fig7_expense_non_monotonic_with_interior_minimum(benchmark, ctx):
    fig = run_once(benchmark, fig7, ctx)
    interior = 0
    for app in {r["app"] for r in fig.rows}:
        rows = sorted(fig.select(app=app), key=lambda r: r["degree"])
        expense = [r["expense_usd"] for r in rows]
        best = int(np.argmin(expense))
        # Packing always saves vs degree 1...
        assert min(expense) < expense[0]
        # ...and the minimum is interior (rises again) for the paper's apps.
        if 0 < best < len(expense) - 1:
            interior += 1
            assert expense[-1] > expense[best]
    assert interior >= 2  # non-monotonicity is the figure's point
