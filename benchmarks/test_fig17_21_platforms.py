"""Benchmarks for the workload/platform figures (Figs. 17, 18, 19, 21)."""

import numpy as np
from conftest import run_once

from repro.experiments.figures import fig17, fig18, fig19, fig21
from repro.workloads import SMITH_WATERMAN


def test_fig17_smith_waterman(benchmark, ctx):
    fig = run_once(benchmark, fig17, ctx)
    rows = sorted(fig.rows, key=lambda r: r["concurrency"])
    # Improvements grow with concurrency and scaling cut > service cut.
    service = [r["service_improvement_pct"] for r in rows]
    assert service[-1] > service[0]
    assert min(fig.column("expense_improvement_pct")) > 0
    for r in rows:
        assert r["scaling_improvement_pct"] > r["service_improvement_pct"]
    # Compute-intensive: chosen degree stays far below the max of 35.
    max_degree = SMITH_WATERMAN.max_packing_degree(10240)
    assert max(fig.column("degree")) < 0.5 * max_degree


def test_fig18_funcx_scales_faster_but_lambda_packs_better(benchmark, ctx):
    fig = run_once(benchmark, fig18, ctx)
    rows = sorted(fig.rows, key=lambda r: r["concurrency"])
    high = rows[-1]
    # FuncX scales faster (paper: ~15% at C=5000).
    assert 5.0 < high["funcx_speedup_pct"] < 35.0
    # With ProPack, service time is lower on Lambda (paper: ~12%).
    assert high["aws_propack_service_s"] < high["funcx_propack_service_s"]


def test_fig19_propack_beats_pywren(benchmark, ctx):
    fig = run_once(benchmark, fig19, ctx)
    assert min(fig.column("service_improvement_pct")) > 0
    assert min(fig.column("expense_improvement_pct")) > 0
    # Paper averages: 52% service, 78% expense.
    assert float(np.mean(fig.column("service_improvement_pct"))) > 25.0
    assert float(np.mean(fig.column("expense_improvement_pct"))) > 55.0


def test_fig21_cross_platform(benchmark, ctx):
    fig = run_once(benchmark, fig21, ctx)
    assert {r["platform"] for r in fig.rows} == {
        "aws-lambda",
        "google-cloud-functions",
        "azure-functions",
    }
    assert min(fig.column("service_improvement_pct")) > 0
    assert min(fig.column("expense_improvement_pct")) > 0
    # Egress fees make the expense win larger off-AWS (paper Fig. 21).
    def mean_expense(platform):
        return float(
            np.mean([r["expense_improvement_pct"] for r in fig.select(platform=platform)])
        )

    aws = mean_expense("aws-lambda")
    assert mean_expense("google-cloud-functions") > aws
    assert mean_expense("azure-functions") > aws
