"""Benchmarks for the headline improvement figures (Figs. 9-12)."""

import numpy as np
from conftest import run_once

from repro.experiments.figures import fig9, fig10, fig11, fig12


def _series_grows(fig, value_col, merit="total"):
    for app in {r["app"] for r in fig.rows}:
        rows = sorted(
            fig.select(app=app, merit=merit), key=lambda r: r["concurrency"]
        )
        values = [r[value_col] for r in rows]
        assert values[-1] > values[0], app


def test_fig9_service_improvement(benchmark, ctx):
    fig = run_once(benchmark, fig9, ctx)
    _series_grows(fig, "improvement_pct")
    high = [
        r["improvement_pct"]
        for r in fig.rows
        if r["concurrency"] == ctx.config.high_concurrency
        and r["merit"] == "total"
    ]
    # Paper: 85% average at C=5000; on the reduced grid (max C=3500) the
    # mean must already be well past 50%.
    assert float(np.mean(high)) > 60.0
    # Positive at every evaluated concurrency for total and tail merits
    # (paper: "faster service ... for all figures of merit"). Median at
    # C=1000 is a documented calibration deviation (EXPERIMENTS.md): the
    # median instance sees little scaling delay at low C in our substrate,
    # so the joint plan trades it for expense there.
    for merit in ("total", "tail"):
        assert min(
            r["improvement_pct"] for r in fig.rows if r["merit"] == merit
        ) > 0.0
    median_high = [
        r["improvement_pct"]
        for r in fig.rows
        if r["merit"] == "median" and r["concurrency"] >= 2000
    ]
    assert min(median_high) > 0.0
    assert {r["merit"] for r in fig.rows} == {"total", "tail", "median"}


def test_fig10_scaling_improvement_exceeds_service(benchmark, ctx):
    fig10_result = run_once(benchmark, fig10, ctx)
    high = [
        r["improvement_pct"]
        for r in fig10_result.rows
        if r["concurrency"] == ctx.config.high_concurrency
    ]
    # "At a concurrency level of 5000 the reduction in scaling time is
    # often more than 90%" — and it exceeds the service-time reduction.
    assert min(high) > 90.0


def test_fig11_expense_improvement(benchmark, ctx):
    fig = run_once(benchmark, fig11, ctx)
    assert min(fig.column("improvement_pct")) > 0.0
    high = [
        r["improvement_pct"]
        for r in fig.rows
        if r["concurrency"] == ctx.config.high_concurrency
    ]
    assert float(np.mean(high)) > 50.0  # paper: 66% average


def test_fig12_absolute_function_hours_and_dollars(benchmark, ctx):
    fig = run_once(benchmark, fig12, ctx)
    for app in {r["app"] for r in fig.rows}:
        base = fig.select(app=app, variant="no packing")[0]
        packed = fig.select(app=app, variant="propack")[0]
        # ProPack cuts both absolute function-hours and dollars (Fig. 12).
        assert packed["function_hours"] < base["function_hours"]
        assert packed["expense_usd"] < base["expense_usd"]
    # Baseline magnitudes are in the paper's ballpark (tens of hours / $).
    sort_base = fig.select(app="sort", variant="no packing")[0]
    assert sort_base["function_hours"] > 30.0
    assert sort_base["expense_usd"] > 20.0
