"""Benchmarks for the chaos harness (CH1) and the auditor's cost contract."""

import time

import pytest
from conftest import record_serving_benchmark, run_once

from repro.experiments.figures import chaos_worst_storm


def test_ch1_protection_survives_worst_found_storm(benchmark, ctx):
    fig = run_once(benchmark, chaos_worst_storm, ctx)
    record_serving_benchmark(benchmark, "chaos_worst_storm", fig)
    by = {r["mode"]: r for r in fig.rows}
    unprot, prot = by["unprotected"], by["protected"]
    # The acceptance claim: the search found a storm that breaks the SLO
    # floor unprotected, and protection recovers attainment at
    # equal-or-lower cost per completed request under that same storm.
    assert unprot["attainment_pct"] < 90.0
    assert prot["attainment_pct"] > unprot["attainment_pct"]
    assert prot["usd_per_1k_completed"] <= unprot["usd_per_1k_completed"]
    # Both runs audited clean over a real event volume.
    assert unprot["violations"] == prot["violations"] == 0
    assert unprot["audit_events"] > 0 and prot["audit_events"] > 0
    # The arrival schedule is shared across modes.
    assert unprot["requests"] == prot["requests"]


def test_ch1_same_seed_reproduces(ctx):
    a = chaos_worst_storm(ctx)
    b = chaos_worst_storm(ctx)
    assert a.rows == b.rows


@pytest.mark.telemetry_overhead
def test_perf_auditor_disabled_is_free():
    """The zero-cost-when-disabled contract for the audit.* family: a
    serving run whose session has no auditor attached must stay within 2%
    of a fully untelemetered run — the instrumentation's per-hook gate is
    one dict lookup and no event may be built.

    Timing-sensitive, so it carries the ``telemetry_overhead`` marker and
    runs in the benchmarks CI job, not the tier-1 suite.
    """
    from repro.core.models import ExecutionTimeModel
    from repro.extensions.streaming import StreamingPolicy
    from repro.faults.scenario import SCENARIOS
    from repro.platform.providers import GOOGLE_CLOUD_FUNCTIONS
    from repro.serving import (
        FixedTTL,
        PoissonProcess,
        ServingConfig,
        ServingSimulator,
        WarmPool,
    )
    from repro.telemetry.config import TelemetryConfig, TelemetrySession
    from repro.workloads import XAPIAN

    exec_model = ExecutionTimeModel(
        coeff_a=XAPIAN.base_seconds, coeff_b=0.03, mem_gb=XAPIAN.mem_gb
    )

    def one_run(telemetry):
        sim = ServingSimulator(
            GOOGLE_CLOUD_FUNCTIONS,
            XAPIAN,
            exec_model,
            pool=WarmPool(FixedTTL(120.0)),
            config=ServingConfig(),
            scenario=SCENARIOS["flaky"],
            seed=31,
            telemetry=telemetry,
        )
        return sim.run(
            PoissonProcess(4.0),
            StreamingPolicy(degree=4, batch_timeout_s=2.0),
            600.0,
        ).n_requests

    def auditorless_session():
        # A live session whose audit.* family has zero subscribers — the
        # disabled path every ordinary telemetry user takes.
        return TelemetrySession(
            TelemetryConfig(tracing=False, metrics=False, events=False)
        )

    # Warm both paths before timing.
    assert one_run(None) == one_run(auditorless_session())

    def best_of(rounds, make_telemetry):
        best = float("inf")
        for _ in range(rounds):
            telemetry = make_telemetry() if make_telemetry else None
            t0 = time.perf_counter()
            one_run(telemetry)
            best = min(best, time.perf_counter() - t0)
        return best

    baseline = best_of(5, None)
    disabled = best_of(5, auditorless_session)
    # 2% contract plus a small absolute epsilon against scheduler jitter.
    assert disabled <= baseline * 1.02 + 0.005, (
        f"auditor-disabled serving cost {disabled:.4f}s vs baseline "
        f"{baseline:.4f}s"
    )
