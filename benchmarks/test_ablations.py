"""Benchmarks for the design-choice ablations (DESIGN.md A1, A2)."""

from conftest import run_once

from repro.experiments.figures import ablation_alternatives, ablation_model_families


def test_a1_model_family_selection(benchmark, ctx):
    """Sec. 2.2: exponential wins for ET, quadratic-family for scaling."""
    fig = run_once(benchmark, ablation_model_families, ctx)
    exec_rows = sorted(fig.select(curve="exec-time(video)"), key=lambda r: r["rank"])
    # The exponential family must rank at/near the top for ET (cubic can
    # shadow it on a short sampled range — both must beat simple linear/log).
    exec_ranks = {r["family"]: r["rank"] for r in exec_rows}
    assert exec_ranks["exponential"] <= 3
    assert exec_ranks["exponential"] < exec_ranks["logarithmic"]

    scaling_rows = fig.select(curve="scaling(aws)")
    scaling_ranks = {r["family"]: r["rank"] for r in scaling_rows}
    # The paper's choice (second-order polynomial) must beat linear and log.
    assert scaling_ranks["quadratic"] < scaling_ranks["linear"]
    assert scaling_ranks["quadratic"] < scaling_ranks["logarithmic"]


def test_a2_alternatives_lose_to_propack(benchmark, ctx):
    """Serial batching / staggering: the rejected mitigations of Secs. 1/4."""
    fig = run_once(benchmark, ablation_alternatives, ctx)
    for app in {r["app"] for r in fig.rows}:
        by_technique = {r["technique"]: r for r in fig.select(app=app)}
        propack = by_technique["propack"]
        batching = by_technique["serial batching (500)"]
        stagger = by_technique["staggered (0.25s)"]
        baseline = by_technique["no packing"]
        # ProPack dominates every alternative on service time...
        assert propack["service_s"] < batching["service_s"]
        assert propack["service_s"] < stagger["service_s"]
        assert propack["service_s"] < baseline["service_s"]
        # ...and on expense.
        assert propack["expense_usd"] < batching["expense_usd"]
        assert propack["expense_usd"] < stagger["expense_usd"]
        # Staggering degrades service relative to the plain burst.
        assert stagger["service_s"] > baseline["service_s"]
