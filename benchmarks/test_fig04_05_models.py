"""Benchmarks for the model-foundation figures (Figs. 4, 5a, 5b)."""

from conftest import run_once

from repro.experiments.figures import fig4, fig5a, fig5b


def test_fig4_exponential_fit_tracks_observations(benchmark, ctx):
    fig = run_once(benchmark, fig4, ctx)
    # ET grows with the packing degree for every app...
    for app in {r["app"] for r in fig.rows}:
        rows = sorted(fig.select(app=app), key=lambda r: r["degree"])
        assert rows[-1]["observed_s"] > 1.5 * rows[0]["observed_s"]
    # ...and the fitted exponential stays within a few percent everywhere.
    assert max(fig.column("error_pct")) < 5.0


def test_fig5a_execution_time_flat_in_concurrency(benchmark, ctx):
    fig = run_once(benchmark, fig5a, ctx)
    for app in {r["app"] for r in fig.rows}:
        values = [r["mean_exec_s"] for r in fig.select(app=app)]
        spread = (max(values) - min(values)) / (sum(values) / len(values))
        assert spread < 0.05  # the paper's "<5% variation"


def test_fig5b_scaling_time_app_independent(benchmark, ctx):
    fig = run_once(benchmark, fig5b, ctx)
    for c in ctx.config.concurrencies:
        values = [r["scaling_s"] for r in fig.select(concurrency=c)]
        spread = (max(values) - min(values)) / (sum(values) / len(values))
        assert spread < 0.10
